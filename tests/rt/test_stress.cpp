/// \file test_stress.cpp
/// \brief Randomized stress tests for the runtime: long random sequences
///        of mixed collectives on nested communicators, every result
///        checked against a sequential replay.  This is the strongest
///        race/cross-talk detector in the suite.

#include <gtest/gtest.h>

#include <vector>

#include "cacqr/support/rng.hpp"
#include "cacqr/rt/comm.hpp"

namespace cacqr::rt {
namespace {

/// Deterministic payload generator shared by ranks and the replay.
std::vector<double> gen(u64 tag, int rank, std::size_t n) {
  std::vector<double> v(n);
  Rng rng(tag * 1000003ULL + static_cast<u64>(rank) + 1);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

class StressSweep : public ::testing::TestWithParam<int> {};

TEST_P(StressSweep, RandomCollectiveSequencesReplayExactly) {
  const int p = GetParam();
  const int kOps = 60;
  // Pre-plan the operation sequence (shared by every rank and the
  // replay): op kind, payload size, root.
  Rng plan(static_cast<u64>(p) * 97);
  struct Op {
    int kind;         // 0 bcast, 1 allreduce, 2 allgather, 3 barrier
    std::size_t n;
    int root;
  };
  std::vector<Op> ops;
  for (int i = 0; i < kOps; ++i) {
    ops.push_back({static_cast<int>(plan.below(4)),
                   static_cast<std::size_t>(1 + plan.below(300)),
                   static_cast<int>(plan.below(static_cast<u64>(p)))});
  }

  Runtime::run(p, [&](Comm& world) {
    for (int i = 0; i < kOps; ++i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      const u64 t = static_cast<u64>(i);
      switch (op.kind) {
        case 0: {
          std::vector<double> data = world.rank() == op.root
                                         ? gen(t, op.root, op.n)
                                         : std::vector<double>(op.n);
          world.bcast(data, op.root);
          EXPECT_EQ(data, gen(t, op.root, op.n)) << "op " << i;
          break;
        }
        case 1: {
          std::vector<double> data = gen(t, world.rank(), op.n);
          world.allreduce_sum(data);
          std::vector<double> expect(op.n, 0.0);
          for (int r = 0; r < p; ++r) {
            auto v = gen(t, r, op.n);
            for (std::size_t k = 0; k < op.n; ++k) expect[k] += v[k];
          }
          for (std::size_t k = 0; k < op.n; ++k) {
            EXPECT_NEAR(data[k], expect[k], 1e-12 * p) << "op " << i;
          }
          break;
        }
        case 2: {
          std::vector<double> mine = gen(t, world.rank(), op.n);
          std::vector<double> all(op.n * static_cast<std::size_t>(p));
          world.allgather(mine, all);
          for (int r = 0; r < p; ++r) {
            auto v = gen(t, r, op.n);
            for (std::size_t k = 0; k < op.n; ++k) {
              EXPECT_EQ(all[static_cast<std::size_t>(r) * op.n + k], v[k])
                  << "op " << i;
            }
          }
          break;
        }
        default:
          world.barrier();
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, StressSweep,
                         ::testing::Values(2, 3, 5, 8));

TEST(StressTest, ConcurrentTrafficOnSiblingComms) {
  // Disjoint sub-communicators run independent collective sequences
  // simultaneously; no value may leak across.
  const int p = 8;
  Runtime::run(p, [&](Comm& world) {
    const int color = world.rank() % 2;
    Comm sub = world.split(color, world.rank());
    for (int i = 0; i < 40; ++i) {
      std::vector<double> v = {double(color * 1000 + i)};
      sub.allreduce_sum(v);
      EXPECT_DOUBLE_EQ(v[0], 4.0 * (color * 1000 + i));
    }
  });
}

TEST(StressTest, InterleavedP2pAndCollectives) {
  // Point-to-point chatter interleaved with collectives on the same comm
  // must not confuse matching (distinct tag spaces).
  const int p = 4;
  Runtime::run(p, [&](Comm& world) {
    for (int i = 0; i < 20; ++i) {
      if (world.rank() == 0) {
        std::vector<double> v = {double(i)};
        world.send(1, /*tag=*/i, v);
      }
      std::vector<double> g = {1.0};
      world.allreduce_sum(g);
      EXPECT_DOUBLE_EQ(g[0], double(p));
      if (world.rank() == 1) {
        std::vector<double> v(1);
        world.recv(0, i, v);
        EXPECT_DOUBLE_EQ(v[0], double(i));
      }
    }
  });
}

TEST(StressTest, ManySmallTeams) {
  // Rapid-fire team launches: the runtime must not leak state between
  // runs (fresh worlds, fresh counters).
  for (int round = 0; round < 25; ++round) {
    auto per_rank = Runtime::run(3, [&](Comm& world) {
      std::vector<double> v = {double(world.rank())};
      world.allreduce_sum(v);
      EXPECT_DOUBLE_EQ(v[0], 3.0);
    });
    EXPECT_EQ(per_rank.size(), 3u);
    // Counters start at zero each run.
    EXPECT_LE(rt::max_counters(per_rank).msgs, 4);
  }
}

}  // namespace
}  // namespace cacqr::rt
