/// \file test_transport_failure.cpp
/// \brief Failure paths of the process transports: a rank killed
///        mid-collective must surface AbortError to the caller promptly
///        (survivors unwind instead of hanging on messages that will
///        never arrive), thrown errors keep their type and message across
///        the process boundary -- including NotSpdError's pivot payload
///        -- and dropped Requests drain cleanly during cross-process
///        unwinding (the ASan job verifies leak-freedom).

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "cacqr/rt/comm.hpp"
#include "cacqr/support/error.hpp"

namespace cacqr::rt {
namespace {

#if defined(__SANITIZE_THREAD__)
#define CACQR_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CACQR_TSAN 1
#endif
#endif

bool shm_testable() {
#if defined(CACQR_TSAN)
  return false;
#else
  return transport_available(TransportKind::shm);
#endif
}

/// Runs `body` on p ranks over the shm backend.
template <class Body>
void run_shm(int p, Body&& body) {
  Runtime::run(p, std::forward<Body>(body), Machine::counting(), 0,
               TransportKind::shm);
}

TEST(TransportFailure, PeerKilledMidCollectiveAbortsSurvivorsPromptly) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  const auto t0 = std::chrono::steady_clock::now();
  try {
    run_shm(4, [](Comm& c) {
      if (c.rank() == 1) raise(SIGKILL);  // dies without a trace
      // Survivors block inside a collective whose rank-1 steps will never
      // happen; the parent's reap must raise the abort flag and every
      // survivor must unwind with AbortError instead of spinning forever.
      std::vector<double> v(64, 1.0);
      for (int i = 0; i < 8; ++i) c.allreduce_sum(v);
    });
    FAIL() << "expected AbortError";
  } catch (const AbortError& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "rank 1"));
    EXPECT_NE(nullptr, std::strstr(e.what(), "signal"));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  // "Promptly": milliseconds in practice; the bound only guards hangs.
  EXPECT_LT(elapsed.count(), 30);
}

TEST(TransportFailure, ThrownErrorTypeAndMessageCrossTheProcessBoundary) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  try {
    run_shm(4, [](Comm& c) {
      if (c.rank() == 2) throw DimensionError("bad shape 3x7");
      std::vector<double> v(8);
      c.recv((c.rank() + 1) % 4, 0, v);  // never satisfied
    });
    FAIL() << "expected DimensionError";
  } catch (const DimensionError& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "bad shape 3x7"));
  }
}

TEST(TransportFailure, NotSpdPivotSurvivesMarshalling) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  try {
    run_shm(2, [](Comm& c) {
      if (c.rank() == 0) throw NotSpdError("leading minor not positive", 7);
      std::vector<double> v(4);
      c.recv(0, 1, v);  // never satisfied
    });
    FAIL() << "expected NotSpdError";
  } catch (const NotSpdError& e) {
    EXPECT_EQ(e.pivot, 7u);
    EXPECT_NE(nullptr, std::strstr(e.what(), "leading minor"));
  }
}

TEST(TransportFailure, LowestFailedRankWinsWhenSeveralThrow) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  try {
    run_shm(4, [](Comm& c) {
      if (c.rank() == 3) throw Error("rank 3 exploded");
      if (c.rank() == 1) throw Error("rank 1 exploded");
      std::vector<double> v(8);
      c.recv((c.rank() + 1) % 4, 0, v);
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "rank 1 exploded"));
  }
}

TEST(TransportFailure, StdExceptionIsRethrownAsRuntimeError) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  // A plain std::runtime_error has no wire type of its own; the parent
  // rethrows a CommError (still a std::runtime_error) with the message.
  EXPECT_THROW(run_shm(2,
                       [](Comm& c) {
                         if (c.rank() == 1) {
                           throw std::runtime_error("plain failure");
                         }
                         std::vector<double> v(8, 1.0);
                         c.allreduce_sum(v);
                       }),
               std::runtime_error);
}

TEST(TransportFailure, DroppedRequestDrainsDuringCrossProcessUnwind) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  // Survivors hold an in-flight Request when a peer dies: the destructor
  // must absorb the AbortError while the original error unwinds, and the
  // run must still surface the peer's typed failure.  ASan verifies the
  // request state leaks nothing on this path.
  EXPECT_THROW(run_shm(4,
                       [](Comm& c) {
                         if (c.rank() == 0) throw Error("root gave up");
                         std::vector<double> v(128, 1.0);
                         Request r = c.start_allreduce_sum(v);
                         std::vector<double> w(32, 2.0);
                         c.allreduce_sum(w);  // blocks; aborts mid-flight
                         r.wait();
                       }),
               Error);
}

TEST(TransportFailure, CleanRunAfterAbortedRun) {
  if (!shm_testable()) GTEST_SKIP() << "shm transport not testable here";
  // Abort state is per-run (per Region), not process-global: a failed
  // run must not poison the next one.
  EXPECT_THROW(run_shm(2,
                       [](Comm& c) {
                         if (c.rank() == 0) throw Error("first run fails");
                         std::vector<double> v(4);
                         c.recv(0, 0, v);
                       }),
               Error);
  RunOutput out = Runtime::run_collect(
      2,
      [](Comm& c) {
        std::vector<double> v = {static_cast<double>(c.rank() + 1)};
        c.allreduce_sum(v);
        c.publish(v);
      },
      Machine::counting(), 0, TransportKind::shm);
  ASSERT_EQ(out.published.size(), 2u);
  EXPECT_EQ(out.published[0][0], 3.0);
  EXPECT_EQ(out.published[1][0], 3.0);
}

TEST(TransportSelection, NamesAndAvailability) {
  EXPECT_STREQ(transport_name(TransportKind::modeled), "modeled");
  EXPECT_STREQ(transport_name(TransportKind::shm), "shm");
  EXPECT_STREQ(transport_name(TransportKind::mpi), "mpi");
  EXPECT_TRUE(transport_available(TransportKind::modeled));
#if !defined(_WIN32)
  EXPECT_TRUE(transport_available(TransportKind::shm));
#endif
}

TEST(TransportSelection, UnavailableBackendFailsLoudly) {
  if (transport_available(TransportKind::mpi)) {
    GTEST_SKIP() << "mpi compiled in; nothing to reject";
  }
  EXPECT_THROW(Runtime::run(2, [](Comm&) {}, Machine::counting(), 0,
                            TransportKind::mpi),
               CommError);
}

}  // namespace
}  // namespace cacqr::rt
