#include <gtest/gtest.h>

#include <vector>

#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/rt/comm.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::rt {
namespace {

/// Returns max-over-ranks counters for a body run on p ranks.
CostCounters measure(int p, const std::function<void(Comm&)>& body,
                     Machine m = Machine::counting()) {
  return max_counters(Runtime::run(p, body, m));
}

TEST(CostTest, SendChargesAlphaAndBeta) {
  auto per_rank = Runtime::run(2, [](Comm& c) {
    std::vector<double> v(10);
    if (c.rank() == 0) {
      c.send(1, 0, v);
    } else {
      c.recv(0, 0, v);
    }
  });
  EXPECT_EQ(per_rank[0].msgs, 1);
  EXPECT_EQ(per_rank[0].words, 10);
  EXPECT_EQ(per_rank[1].msgs, 0);  // alpha is charged at the sender
  EXPECT_EQ(per_rank[1].words, 0);
}

/// The paper's butterfly-collective cost formulas (Section II-B): these are
/// what the instrumented runtime must measure, because the model-validation
/// benches rely on the correspondence.
TEST(CostTest, BcastMatchesButterflyFormula) {
  for (const int p : {2, 4, 8, 16}) {
    const i64 n = 1 << 10;
    auto c = measure(p, [&](Comm& comm) {
      std::vector<double> v(static_cast<std::size_t>(n));
      comm.bcast(v, 0);
    });
    // 2 log2(P) messages, <= 2n words on the critical path.
    EXPECT_EQ(c.msgs, 2 * ceil_log2(p)) << "p=" << p;
    EXPECT_LE(c.words, 2 * n);
    EXPECT_GE(c.words, 2 * n - 2 * n / p - 8);
  }
}

TEST(CostTest, AllreduceMatchesRabenseifnerFormula) {
  for (const int p : {2, 4, 8, 16}) {
    const i64 n = 1 << 10;
    auto c = measure(p, [&](Comm& comm) {
      std::vector<double> v(static_cast<std::size_t>(n));
      comm.allreduce_sum(v);
    });
    EXPECT_EQ(c.msgs, 2 * ceil_log2(p)) << "p=" << p;
    EXPECT_LE(c.words, 2 * n);
    EXPECT_GE(c.words, 2 * n - 2 * n / p - 8);
  }
}

TEST(CostTest, AllgatherMatchesBruckFormula) {
  for (const int p : {2, 4, 8, 16}) {
    const i64 n_per = 128;
    auto c = measure(p, [&](Comm& comm) {
      std::vector<double> mine(static_cast<std::size_t>(n_per));
      std::vector<double> all(static_cast<std::size_t>(n_per * p));
      comm.allgather(mine, all);
    });
    const i64 n_total = n_per * p;
    EXPECT_EQ(c.msgs, ceil_log2(p)) << "p=" << p;
    EXPECT_LE(c.words, n_total);
    EXPECT_GE(c.words, n_total - n_per - 8);
  }
}

TEST(CostTest, BarrierIsZeroWords) {
  for (const int p : {2, 3, 8}) {
    auto c = measure(p, [](Comm& comm) { comm.barrier(); });
    EXPECT_EQ(c.words, 0);
    EXPECT_EQ(c.msgs, ceil_log2(p));
  }
}

TEST(CostTest, TransposeSwapIsAlphaPlusN) {
  auto c = measure(4, [](Comm& comm) {
    std::vector<double> v(50);
    comm.sendrecv_swap(comm.rank() ^ 1, 0, v);
  });
  EXPECT_EQ(c.msgs, 1);
  EXPECT_EQ(c.words, 50);
}

TEST(CostTest, FlopsDrainIntoCounters) {
  auto per_rank = Runtime::run(2, [](Comm& c) {
    lin::Matrix a(8, 8), b(8, 8), out(8, 8);
    lin::matmul(a, b, out);  // 2*8^3 = 1024 flops
    c.barrier();             // drains the thread-local tally
  });
  EXPECT_EQ(per_rank[0].flops, 1024);
  EXPECT_EQ(per_rank[1].flops, 1024);
}

TEST(CostTest, ModeledClockAdvancesWithMachine) {
  const Machine m{1e-6, 1e-9, 1e-11};
  auto per_rank = Runtime::run(2,
                               [](Comm& c) {
                                 std::vector<double> v(1000);
                                 if (c.rank() == 0) {
                                   c.send(1, 0, v);
                                 } else {
                                   c.recv(0, 0, v);
                                 }
                               },
                               m);
  // Sender: alpha + 1000 beta = 1e-6 + 1e-6 = 2e-6.
  EXPECT_NEAR(per_rank[0].time, 2e-6, 1e-12);
  // Receiver clock jumps to the arrival stamp.
  EXPECT_NEAR(per_rank[1].time, 2e-6, 1e-12);
}

TEST(CostTest, ModeledClockSerializesDependencies) {
  // Chain: 0 -> 1 -> 2; the final clock must be two hops, not one.
  const Machine m{1.0, 0.0, 0.0};  // 1 second per message, nothing else
  auto per_rank = Runtime::run(3,
                               [](Comm& c) {
                                 std::vector<double> v(1);
                                 if (c.rank() == 0) {
                                   c.send(1, 0, v);
                                 } else if (c.rank() == 1) {
                                   c.recv(0, 0, v);
                                   c.send(2, 0, v);
                                 } else {
                                   c.recv(1, 0, v);
                                 }
                               },
                               m);
  EXPECT_DOUBLE_EQ(per_rank[2].time, 2.0);
}

TEST(CostTest, ComputeEntersClockViaGamma) {
  const Machine m{0.0, 0.0, 1e-9};
  auto per_rank = Runtime::run(1,
                               [](Comm& c) {
                                 lin::Matrix a(10, 10), b(10, 10), out(10, 10);
                                 lin::matmul(a, b, out);
                                 c.charge_local_flops();
                               },
                               m);
  EXPECT_NEAR(per_rank[0].time, 2000.0 * 1e-9, 1e-15);
}

TEST(CostTest, SyncClockEqualizesWithoutCharging) {
  const Machine m{0.0, 0.0, 1.0};  // 1 second per flop
  auto per_rank = Runtime::run(2,
                               [](Comm& c) {
                                 if (c.rank() == 0) {
                                   lin::Matrix a(4, 4), b(4, 4), out(4, 4);
                                   lin::matmul(a, b, out);  // 128 flops
                                 }
                                 c.sync_clock();
                               },
                               m);
  EXPECT_DOUBLE_EQ(per_rank[0].time, 128.0);
  EXPECT_DOUBLE_EQ(per_rank[1].time, 128.0);
  // sync_clock must not add messages or words.
  EXPECT_EQ(per_rank[0].msgs + per_rank[1].msgs, 0);
  EXPECT_EQ(per_rank[0].words + per_rank[1].words, 0);
}

TEST(CostTest, CountersSnapshotDelta) {
  Runtime::run(2, [](Comm& c) {
    const CostCounters before = c.counters();
    std::vector<double> v(64);
    c.allreduce_sum(v);
    const CostCounters delta = c.counters() - before;
    EXPECT_EQ(delta.msgs, 2);  // p=2: 1 reduce-scatter + 1 allgather stage
    // Each stage moves half the vector: n/2 + n/2 = n words at p = 2
    // (the 2n formula is the large-P limit, 2n(P-1)/P).
    EXPECT_EQ(delta.words, 64);
  });
}

}  // namespace
}  // namespace cacqr::rt
