#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cacqr/rt/comm.hpp"

namespace cacqr::rt {
namespace {

TEST(RuntimeTest, SingleRankRunsInline) {
  // Inline execution of the P=1 body on the calling thread is a modeled
  // backend property (process backends fork even for one rank), so the
  // captured counter pins the transport.
  int visits = 0;
  Runtime::run(
      1,
      [&](Comm& c) {
        EXPECT_EQ(c.rank(), 0);
        EXPECT_EQ(c.size(), 1);
        ++visits;
      },
      Machine::counting(), 0, TransportKind::modeled);
  EXPECT_EQ(visits, 1);
}

TEST(RuntimeTest, AllRanksExecute) {
  const int p = 8;
  const RunOutput out = Runtime::run_collect(p, [](Comm& c) {
    const double id[] = {static_cast<double>(c.rank()),
                         static_cast<double>(c.world_rank())};
    c.publish(id);
  });
  ASSERT_EQ(out.published.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto& blob = out.published[static_cast<std::size_t>(r)];
    ASSERT_EQ(blob.size(), 2u) << "rank " << r;
    EXPECT_EQ(blob[0], static_cast<double>(r));
    EXPECT_EQ(blob[1], static_cast<double>(r));
  }
}

TEST(RuntimeTest, ExceptionPropagatesAndAbortsTeam) {
  // Rank 2 throws while others block in recv: the abort must unwind all.
  EXPECT_THROW(
      Runtime::run(4,
                   [](Comm& c) {
                     if (c.rank() == 2) throw Error("rank 2 exploded");
                     std::vector<double> buf(4);
                     c.recv((c.rank() + 1) % 4, 0, buf);  // never satisfied
                   }),
      Error);
}

TEST(RuntimeTest, InvalidRankCountThrows) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), CommError);
}

TEST(P2pTest, BasicSendRecv) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> data = {1.0, 2.0, 3.0};
      c.send(1, 7, data);
    } else {
      std::vector<double> data(3);
      c.recv(0, 7, data);
      EXPECT_EQ(data[0], 1.0);
      EXPECT_EQ(data[2], 3.0);
    }
  });
}

TEST(P2pTest, TagSelectivity) {
  // Messages with different tags must match the right receives, even when
  // posted out of order.
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> a = {1.0};
      std::vector<double> b = {2.0};
      c.send(1, 100, a);
      c.send(1, 200, b);
    } else {
      std::vector<double> b(1), a(1);
      c.recv(0, 200, b);  // reverse order of sends
      c.recv(0, 100, a);
      EXPECT_EQ(a[0], 1.0);
      EXPECT_EQ(b[0], 2.0);
    }
  });
}

TEST(P2pTest, FifoPerChannel) {
  Runtime::run(2, [](Comm& c) {
    const int burst = 32;
    if (c.rank() == 0) {
      for (int i = 0; i < burst; ++i) {
        std::vector<double> v = {static_cast<double>(i)};
        c.send(1, 5, v);
      }
    } else {
      for (int i = 0; i < burst; ++i) {
        std::vector<double> v(1);
        c.recv(0, 5, v);
        EXPECT_EQ(v[0], static_cast<double>(i));
      }
    }
  });
}

TEST(P2pTest, SizeMismatchDetected) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              std::vector<double> v3(3), v4(4);
                              if (c.rank() == 0) {
                                c.send(1, 0, v3);
                              } else {
                                c.recv(0, 0, v4);
                              }
                            }),
               CommError);
}

TEST(P2pTest, SwapExchangesBuffers) {
  Runtime::run(4, [](Comm& c) {
    std::vector<double> v = {static_cast<double>(c.rank())};
    const int partner = c.rank() ^ 1;
    c.sendrecv_swap(partner, 3, v);
    EXPECT_EQ(v[0], static_cast<double>(partner));
  });
}

TEST(P2pTest, SwapWithSelfIsNoop) {
  Runtime::run(3, [](Comm& c) {
    std::vector<double> v = {42.0};
    c.sendrecv_swap(c.rank(), 0, v);
    EXPECT_EQ(v[0], 42.0);
  });
}

TEST(P2pTest, BadRankThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              std::vector<double> v(1);
                              c.send(5, 0, v);
                            }),
               CommError);
}

TEST(SplitTest, RowsAndColumns) {
  // 2x3 grid: split by row then by column; check ranks and sizes.
  Runtime::run(6, [](Comm& c) {
    const int row = c.rank() / 3;
    const int col = c.rank() % 3;
    Comm row_comm = c.split(row, col);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(row_comm.rank(), col);
    Comm col_comm = c.split(col, row);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(col_comm.rank(), row);
    EXPECT_EQ(col_comm.world_rank(), c.rank());
  });
}

TEST(SplitTest, KeyReordersRanks) {
  Runtime::run(4, [](Comm& c) {
    // Reverse order via key.
    Comm rev = c.split(0, 100 - c.rank());
    EXPECT_EQ(rev.rank(), 3 - c.rank());
  });
}

TEST(SplitTest, SubCommunicatorIsolation) {
  // Traffic in one subcomm must not leak into a sibling subcomm even with
  // identical ranks and tags.
  Runtime::run(4, [](Comm& c) {
    const int color = c.rank() / 2;
    Comm sub = c.split(color, c.rank());
    std::vector<double> v = {static_cast<double>(c.rank())};
    if (sub.rank() == 0) {
      sub.send(1, 9, v);
    } else {
      std::vector<double> got(1);
      sub.recv(0, 9, got);
      // Must come from the rank 0 of MY group.
      EXPECT_EQ(got[0], static_cast<double>(color * 2));
    }
  });
}

TEST(SplitTest, NestedSplits) {
  Runtime::run(8, [](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    // World rank still traceable.
    EXPECT_EQ(quarter.world_rank(), c.rank());
  });
}

}  // namespace
}  // namespace cacqr::rt
