#include <gtest/gtest.h>

#include <vector>

#include "cacqr/grid/grid.hpp"

namespace cacqr::grid {
namespace {

/// World ranks of a communicator's members in comm-rank order.
std::vector<int> members_of(const rt::Comm& c) {
  std::vector<double> mine = {static_cast<double>(c.world_rank())};
  std::vector<double> all(static_cast<std::size_t>(c.size()));
  c.allgather(mine, all);
  std::vector<int> out;
  out.reserve(all.size());
  for (double v : all) out.push_back(static_cast<int>(v));
  return out;
}

TEST(CubeGridTest, CoordinateRoundTrip) {
  for (const int g : {1, 2, 3}) {
    rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
      CubeGrid grid(world, g);
      const auto [x, y, z] = grid.coords();
      EXPECT_EQ(world.rank(), x + g * (y + g * z));
      EXPECT_GE(x, 0);
      EXPECT_LT(x, g);
      EXPECT_GE(y, 0);
      EXPECT_LT(y, g);
      EXPECT_GE(z, 0);
      EXPECT_LT(z, g);
    });
  }
}

TEST(CubeGridTest, CommSizesAndRanks) {
  const int g = 2;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    CubeGrid grid(world, g);
    const auto [x, y, z] = grid.coords();
    EXPECT_EQ(grid.row().size(), g);
    EXPECT_EQ(grid.col().size(), g);
    EXPECT_EQ(grid.depth().size(), g);
    EXPECT_EQ(grid.slice().size(), g * g);
    EXPECT_EQ(grid.row().rank(), x);
    EXPECT_EQ(grid.col().rank(), y);
    EXPECT_EQ(grid.depth().rank(), z);
    EXPECT_EQ(grid.slice().rank(), x + g * y);
  });
}

TEST(CubeGridTest, RowCommMembership) {
  // Pi[:, y, z] must contain exactly the ranks x' + g*(y + g*z).
  const int g = 3;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    CubeGrid grid(world, g);
    const auto [x, y, z] = grid.coords();
    (void)x;
    const auto got = members_of(grid.row());
    for (int xp = 0; xp < g; ++xp) {
      EXPECT_EQ(got[xp], xp + g * (y + g * z));
    }
  });
}

TEST(CubeGridTest, DepthCommMembership) {
  const int g = 3;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    CubeGrid grid(world, g);
    const auto [x, y, z] = grid.coords();
    (void)z;
    const auto got = members_of(grid.depth());
    for (int zp = 0; zp < g; ++zp) {
      EXPECT_EQ(got[zp], x + g * (y + g * zp));
    }
  });
}

TEST(CubeGridTest, RejectsWrongSize) {
  rt::Runtime::run(6, [](rt::Comm& world) {
    EXPECT_THROW(CubeGrid(world, 2), DimensionError);
  });
}

TEST(TunableGridTest, ValidShape) {
  EXPECT_TRUE(TunableGrid::valid_shape(4, 1, 4));
  EXPECT_TRUE(TunableGrid::valid_shape(8, 2, 2));
  EXPECT_TRUE(TunableGrid::valid_shape(16, 2, 4));
  EXPECT_TRUE(TunableGrid::valid_shape(1, 1, 1));
  EXPECT_FALSE(TunableGrid::valid_shape(8, 2, 4));   // wrong product
  EXPECT_FALSE(TunableGrid::valid_shape(18, 3, 2));  // c does not divide d
  EXPECT_FALSE(TunableGrid::valid_shape(4, 2, 1));   // d < c
}

TEST(TunableGridTest, CoordinatesAndSizes) {
  // c=2, d=4: P = 16.
  rt::Runtime::run(16, [](rt::Comm& world) {
    TunableGrid grid(world, 2, 4);
    const auto [x, y, z] = grid.coords();
    EXPECT_EQ(world.rank(), x + 2 * (y + 4 * z));
    EXPECT_EQ(grid.row().size(), 2);
    EXPECT_EQ(grid.col().size(), 4);
    EXPECT_EQ(grid.depth().size(), 2);
    EXPECT_EQ(grid.slice().size(), 8);
    EXPECT_EQ(grid.ygroup_contig().size(), 2);
    EXPECT_EQ(grid.ygroup_strided().size(), 2);
    EXPECT_EQ(grid.row().rank(), x);
    EXPECT_EQ(grid.col().rank(), y);
    EXPECT_EQ(grid.depth().rank(), z);
  });
}

TEST(TunableGridTest, ContiguousYGroupMembership) {
  // c=2, d=4: groups {0,1} and {2,3} along y.
  rt::Runtime::run(16, [](rt::Comm& world) {
    TunableGrid grid(world, 2, 4);
    const auto [x, y, z] = grid.coords();
    const auto got = members_of(grid.ygroup_contig());
    const int base = 2 * (y / 2);
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(got[i], x + 2 * ((base + i) + 4 * z));
    }
    EXPECT_EQ(grid.ygroup_contig().rank(), y % 2);
  });
}

TEST(TunableGridTest, StridedYGroupMembership) {
  // c=2, d=4: strided groups {0,2} and {1,3} along y.
  rt::Runtime::run(16, [](rt::Comm& world) {
    TunableGrid grid(world, 2, 4);
    const auto [x, y, z] = grid.coords();
    const auto got = members_of(grid.ygroup_strided());
    for (int i = 0; i < 2; ++i) {
      EXPECT_EQ(got[i], x + 2 * ((y % 2 + 2 * i) + 4 * z));
    }
    EXPECT_EQ(grid.ygroup_strided().rank(), y / 2);
  });
}

TEST(TunableGridTest, SubcubeCoordinates) {
  // The subcube must be a well-formed CubeGrid with y' = y mod c.
  rt::Runtime::run(16, [](rt::Comm& world) {
    TunableGrid grid(world, 2, 4);
    const auto [x, y, z] = grid.coords();
    EXPECT_EQ(grid.subcube_index(), y / 2);
    const auto& sub = grid.subcube();
    EXPECT_EQ(sub.g(), 2);
    EXPECT_EQ(sub.coords().x, x);
    EXPECT_EQ(sub.coords().y, y % 2);
    EXPECT_EQ(sub.coords().z, z);
  });
}

TEST(TunableGridTest, DegenerateOneDimensional) {
  // c=1: the 1D-CQR2 layout; subcubes are single ranks.
  rt::Runtime::run(6, [](rt::Comm& world) {
    TunableGrid grid(world, 1, 6);
    EXPECT_EQ(grid.row().size(), 1);
    EXPECT_EQ(grid.col().size(), 6);
    EXPECT_EQ(grid.depth().size(), 1);
    EXPECT_EQ(grid.subcube().g(), 1);
    EXPECT_EQ(grid.subcube_index(), grid.coords().y);
    EXPECT_EQ(grid.ygroup_strided().size(), 6);
  });
}

TEST(TunableGridTest, FullCubeSpecialCase) {
  // c == d == P^(1/3): single subcube spanning the whole grid (3D-CQR2).
  rt::Runtime::run(8, [](rt::Comm& world) {
    TunableGrid grid(world, 2, 2);
    EXPECT_EQ(grid.subcube_index(), 0);
    EXPECT_EQ(grid.subcube().g(), 2);
    EXPECT_EQ(grid.subcube().cube().size(), 8);
    EXPECT_EQ(grid.ygroup_strided().size(), 1);
  });
}

TEST(TunableGridTest, RejectsInvalidShape) {
  rt::Runtime::run(8, [](rt::Comm& world) {
    EXPECT_THROW(TunableGrid(world, 2, 4), DimensionError);
  });
}

}  // namespace
}  // namespace cacqr::grid
