#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cacqr/tune/cache.hpp"

namespace cacqr::tune {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct CacheFixture : ::testing::Test {
  void SetUp() override {
    dir = (fs::temp_directory_path() /
           ("cacqr_cache_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
              .string();
    fs::remove_all(dir);
  }
  void TearDown() override { fs::remove_all(dir); }
  std::string dir;
};

Plan sample_plan() {
  Plan p;
  p.algo = "ca_cqr2";
  p.c = 2;
  p.d = 2;
  p.predicted_seconds = 0.125;
  p.measured_seconds = 0.25;
  p.source = "measured";
  return p;
}

TEST_F(CacheFixture, RoundTripIsIdentical) {
  const PlanCache cache(dir);
  const ProblemKey key{8192, 128, 8, 1};
  const Plan plan = sample_plan();
  cache.store("fp-a", key, plan);

  auto loaded = cache.load("fp-a", key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->algo, plan.algo);
  EXPECT_EQ(loaded->c, plan.c);
  EXPECT_EQ(loaded->d, plan.d);
  EXPECT_EQ(loaded->pr, plan.pr);
  EXPECT_EQ(loaded->pc, plan.pc);
  EXPECT_EQ(loaded->block, plan.block);
  EXPECT_EQ(loaded->predicted_seconds, plan.predicted_seconds);
  EXPECT_EQ(loaded->measured_seconds, plan.measured_seconds);
  EXPECT_EQ(loaded->source, "cache");  // provenance is rewritten on load
}

TEST_F(CacheFixture, SerializationIsDeterministic) {
  const PlanCache cache(dir);
  const ProblemKey k1{8192, 128, 8, 1};
  const ProblemKey k2{1024, 64, 4, 2};
  // Insert in one order...
  cache.store("fp-a", k1, sample_plan());
  cache.store("fp-a", k2, sample_plan());
  const std::string text_a = read_file(cache.plans_path("fp-a"));
  // ...and the reverse order into a second cache: byte-identical files
  // (keys are sorted on write; numbers are shortest-round-trip).
  const std::string dir_b = dir + "-b";
  const PlanCache cache_b(dir_b);
  cache_b.store("fp-a", k2, sample_plan());
  cache_b.store("fp-a", k1, sample_plan());
  EXPECT_EQ(text_a, read_file(cache_b.plans_path("fp-a")));
  // Re-storing an existing entry is a no-op on the bytes.
  cache.store("fp-a", k1, sample_plan());
  EXPECT_EQ(text_a, read_file(cache.plans_path("fp-a")));
  fs::remove_all(dir_b);
}

TEST_F(CacheFixture, MissesOnUnknownKeyOrFingerprint) {
  const PlanCache cache(dir);
  const ProblemKey key{8192, 128, 8, 1};
  cache.store("fp-a", key, sample_plan());
  EXPECT_FALSE(cache.load("fp-b", key).has_value());
  EXPECT_FALSE(cache.load("fp-a", ProblemKey{8192, 128, 8, 2}).has_value());
}

TEST_F(CacheFixture, CorruptedFileIsIgnoredNotFatal) {
  const PlanCache cache(dir);
  const ProblemKey key{8192, 128, 8, 1};
  cache.store("fp-a", key, sample_plan());
  const std::string path = cache.plans_path("fp-a");

  for (const char* garbage :
       {"not json at all", "{\"schema\": 1, \"plans\": [truncated",
        "[1, 2, 3]", ""}) {
    std::ofstream(path, std::ios::trunc) << garbage;
    EXPECT_FALSE(cache.load("fp-a", key).has_value()) << garbage;
    // And storing over garbage recovers the file.
    cache.store("fp-a", key, sample_plan());
    EXPECT_TRUE(cache.load("fp-a", key).has_value()) << garbage;
  }
}

TEST_F(CacheFixture, WrongSchemaVersionIsIgnored) {
  const PlanCache cache(dir);
  const ProblemKey key{8192, 128, 8, 1};
  cache.store("fp-a", key, sample_plan());
  // Rewrite the envelope with a future schema version: entries must be
  // invisible (old binaries never misread new formats).
  std::string text = read_file(cache.plans_path("fp-a"));
  const auto pos = text.find("\"schema\": 1");
  ASSERT_NE(pos, std::string::npos) << text;
  text.replace(pos, 11, "\"schema\": 99");
  std::ofstream(cache.plans_path("fp-a"), std::ios::trunc) << text;
  EXPECT_FALSE(cache.load("fp-a", key).has_value());
}

TEST_F(CacheFixture, MalformedPlanEntryIsIgnored) {
  const PlanCache cache(dir);
  const ProblemKey key{8192, 128, 8, 1};
  Plan bad = sample_plan();
  bad.algo = "quantum_qr";  // unknown variant: must be rejected on load
  cache.store("fp-a", key, bad);
  EXPECT_FALSE(cache.load("fp-a", key).has_value());
}

TEST_F(CacheFixture, DisabledCacheIsInert) {
  const PlanCache cache;  // no directory
  EXPECT_FALSE(cache.enabled());
  const ProblemKey key{8192, 128, 8, 1};
  cache.store("fp-a", key, sample_plan());  // no-op, no crash
  EXPECT_FALSE(cache.load("fp-a", key).has_value());
}

TEST_F(CacheFixture, ProfileRoundTrip) {
  const PlanCache cache(dir);
  MachineProfile p = generic_profile();
  p.machine.alpha_s = 3.25e-7;
  p.kernels.push_back({"gemm_nn", 384, 384, 384, 17.5});
  p.scaling.push_back({4, 2.5});
  cache.store_profile(p);

  auto loaded = cache.load_profile(p.host);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->host, p.host);
  EXPECT_EQ(loaded->machine.alpha_s, p.machine.alpha_s);
  EXPECT_EQ(loaded->machine.beta_s, p.machine.beta_s);
  EXPECT_EQ(loaded->machine.gamma_s, p.machine.gamma_s);
  ASSERT_EQ(loaded->kernels.size(), 1u);
  EXPECT_EQ(loaded->kernels[0].gflops, 17.5);
  EXPECT_EQ(loaded->thread_speedup(4), 2.5);
  EXPECT_EQ(loaded->fingerprint(), p.fingerprint());

  EXPECT_FALSE(cache.load_profile("some-other-host").has_value());
}

TEST_F(CacheFixture, FromEnvRespectsUnsetAndSet) {
  // The env var is read at call time so tests can repoint it; restore
  // whatever the surrounding ctest pass had exported.
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::unsetenv("CACQR_TUNE_DIR");
  EXPECT_FALSE(PlanCache::from_env().enabled());
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);
  const PlanCache cache = PlanCache::from_env();
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.dir(), dir);
  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
}

}  // namespace
}  // namespace cacqr::tune
