/// \file test_precision_plan.cpp
/// \brief The planner's precision axis: per-precision machine selection
///        from the v3 profile schema, Plan JSON round-trips of the
///        precision tag, and mixed/fp32 scoring of the CholeskyQR
///        families against the fp64 baseline.

#include <gtest/gtest.h>

#include "cacqr/lin/kernel.hpp"
#include "cacqr/tune/planner.hpp"

namespace cacqr::tune {
namespace {

const Plan* find_algo(const std::vector<Plan>& cands,
                      const std::string& algo) {
  for (const Plan& p : cands) {
    if (p.algo == algo) return &p;
  }
  return nullptr;
}

TEST(PrecisionPlanTest, PlanJsonRoundTripsPrecision) {
  Plan p;
  p.algo = "cqr_1d";
  p.d = 8;
  p.source = "model";
  p.precision = Precision::mixed;
  auto back = Plan::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->precision, Precision::mixed);

  p.precision = Precision::fp32;
  back = Plan::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->precision, Precision::fp32);

  // An unknown precision spelling is corruption, not a default.
  support::Json j = p.to_json();
  j.set("precision", "fp16");
  EXPECT_FALSE(Plan::from_json(j).has_value());
}

TEST(PrecisionPlanTest, CandidatesStampRequestedPrecision) {
  const Planner planner(generic_profile());
  for (const Precision prec :
       {Precision::fp64, Precision::mixed, Precision::fp32}) {
    for (const Plan& p :
         planner.candidates({8192, 128, 8, 1, 2, 0, prec})) {
      EXPECT_EQ(p.precision, prec) << p.algo << " " << p.grid();
    }
  }
}

TEST(PrecisionPlanTest, MixedLowersCholeskyFamilyScoresOnly) {
  // generic_profile's nominal fp32 lane runs at twice the fp64 rate, so
  // under `mixed` every CholeskyQR candidate must get strictly cheaper
  // (one Gram stage at halved beta and gamma32) while the Householder
  // baseline -- no fp32 lane -- scores identically.  `fp32` discounts
  // both passes, so it undercuts `mixed` in turn.
  const Planner planner(generic_profile());
  const ProblemKey f64{8192, 128, 8, 1};
  const ProblemKey mixed{8192, 128, 8, 1, 2, 0, Precision::mixed};
  const ProblemKey fp32{8192, 128, 8, 1, 2, 0, Precision::fp32};
  const auto c64 = planner.candidates(f64);
  const auto cmx = planner.candidates(mixed);
  const auto c32 = planner.candidates(fp32);
  for (const char* algo : {"cqr_1d", "ca_cqr2"}) {
    const Plan* p64 = find_algo(c64, algo);
    const Plan* pmx = find_algo(cmx, algo);
    const Plan* p32 = find_algo(c32, algo);
    ASSERT_NE(p64, nullptr) << algo;
    ASSERT_NE(pmx, nullptr) << algo;
    ASSERT_NE(p32, nullptr) << algo;
    EXPECT_LT(pmx->predicted_seconds, p64->predicted_seconds) << algo;
    EXPECT_LT(p32->predicted_seconds, pmx->predicted_seconds) << algo;
  }
  const Plan* pg64 = find_algo(c64, "pgeqrf_2d");
  const Plan* pgmx = find_algo(cmx, "pgeqrf_2d");
  ASSERT_NE(pg64, nullptr);
  ASSERT_NE(pgmx, nullptr);
  EXPECT_DOUBLE_EQ(pgmx->predicted_seconds, pg64->predicted_seconds);
}

TEST(PrecisionPlanTest, ThreePassKeysIgnorePrecision) {
  // The 3-pass shifted driver is always full fp64, so a passes = 3 key
  // scores identically whatever precision it carries.
  const Planner planner(generic_profile());
  const auto f64 = planner.candidates({8192, 128, 8, 1, 3, 0});
  const auto mixed =
      planner.candidates({8192, 128, 8, 1, 3, 0, Precision::mixed});
  const Plan* p64 = find_algo(f64, "cqr_1d");
  const Plan* pmx = find_algo(mixed, "cqr_1d");
  ASSERT_NE(p64, nullptr);
  ASSERT_NE(pmx, nullptr);
  EXPECT_DOUBLE_EQ(pmx->predicted_seconds, p64->predicted_seconds);
}

TEST(ProfilePrecisionTest, MachineForSelectsF32Gamma) {
  MachineProfile p = generic_profile();
  const model::Machine f64 = p.machine_for("generic", 1);
  const model::Machine f32 = p.machine_for("generic", 1, Precision::fp32);
  // generic_profile's nominal fp32 lane: textbook 2x.
  EXPECT_DOUBLE_EQ(f32.gamma_s, f64.gamma_s / 2.0);
  EXPECT_DOUBLE_EQ(f32.peak_gflops_node, 2.0 * f64.peak_gflops_node);
  // Network terms are precision-independent (the halved beta is a
  // payload property, charged by the word counters, not the machine).
  EXPECT_DOUBLE_EQ(f32.alpha_s, f64.alpha_s);
  EXPECT_DOUBLE_EQ(f32.beta_s, f64.beta_s);
}

TEST(ProfilePrecisionTest, UnmeasuredF32LaneReusesFp64Rate) {
  // A pre-v3-style calibration (gamma32_s == 0) must conservatively
  // fall back to the fp64 rate instead of claiming infinite speed.
  MachineProfile p = generic_profile();
  p.variants = {{"generic", p.machine.gamma_s, p.machine.peak_gflops_node,
                 0.0, 0.0, {{1, 1.0}}}};
  const model::Machine f32 = p.machine_for("generic", 1, Precision::fp32);
  EXPECT_DOUBLE_EQ(f32.gamma_s, p.machine.gamma_s);
  EXPECT_DOUBLE_EQ(f32.peak_gflops_node, p.machine.peak_gflops_node);
}

TEST(ProfilePrecisionTest, LoadedProfileLackingActiveVariantFallsBack) {
  // A profile calibrated on another machine (or by an older build) may
  // not list the variant this host's dispatcher actually runs.  After a
  // JSON round-trip -- the path a loaded CACQR_TUNE_DIR profile takes --
  // machine_for(active) must fall back to the headline machine, for both
  // precisions, rather than misattributing another variant's rates.
  const std::string active =
      lin::kernel::variant_name(lin::kernel::active_variant());
  MachineProfile p = generic_profile();
  p.variants = {{active + "_other", p.machine.gamma_s / 3.0,
                 p.machine.peak_gflops_node * 3.0,
                 p.machine.gamma_s / 6.0,
                 p.machine.peak_gflops_node * 6.0,
                 {{1, 1.0}}}};
  const auto loaded = MachineProfile::from_json(p.to_json());
  ASSERT_TRUE(loaded.has_value());
  const model::Machine base = loaded->machine_at(1);
  const model::Machine got = loaded->machine_for(active, 1);
  EXPECT_DOUBLE_EQ(got.gamma_s, base.gamma_s);
  const model::Machine got32 =
      loaded->machine_for(active, 1, Precision::fp32);
  EXPECT_DOUBLE_EQ(got32.gamma_s, base.gamma_s);
  // The listed (non-active) variant is still reachable by its own name.
  const model::Machine other =
      loaded->machine_for(active + "_other", 1, Precision::fp32);
  EXPECT_DOUBLE_EQ(other.gamma_s, base.gamma_s / 6.0);
}

TEST(ProfilePrecisionTest, JsonRoundTripsF32LaneAndFingerprintSeesIt) {
  MachineProfile p = generic_profile();
  const auto back = MachineProfile::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->variants.size(), p.variants.size());
  EXPECT_EQ(back->variants[0].gamma32_s, p.variants[0].gamma32_s);
  EXPECT_EQ(back->variants[0].peak_gflops32, p.variants[0].peak_gflops32);
  EXPECT_EQ(back->fingerprint(), p.fingerprint());
  // Two profiles differing only in the fp32 rate plan differently, so
  // they must key the plan cache differently.
  MachineProfile q = generic_profile();
  q.variants[0].gamma32_s *= 2.0;
  EXPECT_NE(q.fingerprint(), p.fingerprint());
}

}  // namespace
}  // namespace cacqr::tune
