#include <gtest/gtest.h>

#include "cacqr/grid/grid.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/model/sweep.hpp"
#include "cacqr/tune/planner.hpp"

namespace cacqr::tune {
namespace {

MachineProfile profile() { return generic_profile(); }

TEST(ProblemKeyTest, CanonicalText) {
  EXPECT_EQ((ProblemKey{8192, 128, 8, 1}.text()),
            "m8192_n128_p8_t1_s2_bc0_fp64");
  EXPECT_EQ((ProblemKey{1, 1, 1, 4, 3, 64}.text()),
            "m1_n1_p1_t4_s3_bc64_fp64");
  EXPECT_EQ(
      (ProblemKey{8192, 128, 8, 1, 2, 0, Precision::mixed}.text()),
      "m8192_n128_p8_t1_s2_bc0_mixed");
}

TEST(PlannerTest, PassesScaleCholeskyFamilies) {
  const Planner planner(profile());
  const ProblemKey two{8192, 128, 8, 1, 2, 0};
  const ProblemKey three{8192, 128, 8, 1, 3, 0};
  auto find = [](const std::vector<Plan>& cands, const std::string& algo) {
    for (const Plan& p : cands) {
      if (p.algo == algo) return p;
    }
    return Plan{};
  };
  const Plan cqr2 = find(planner.candidates(two), "cqr_1d");
  const Plan cqr3 = find(planner.candidates(three), "cqr_1d");
  EXPECT_DOUBLE_EQ(cqr3.predicted_seconds, cqr2.predicted_seconds * 1.5);
  // The Householder baseline ignores the passes knob.
  const Plan pg2 = find(planner.candidates(two), "pgeqrf_2d");
  const Plan pg3 = find(planner.candidates(three), "pgeqrf_2d");
  EXPECT_DOUBLE_EQ(pg3.predicted_seconds, pg2.predicted_seconds);
}

TEST(PlanTest, GridTagsMatchBenchConvention) {
  Plan p1d;
  p1d.algo = "cqr_1d";
  p1d.d = 8;
  EXPECT_EQ(p1d.grid(), "p8");
  Plan pca;
  pca.algo = "ca_cqr2";
  pca.c = 2;
  pca.d = 4;
  EXPECT_EQ(pca.grid(), "c2d4");
  Plan pge;
  pge.algo = "pgeqrf_2d";
  pge.pr = 4;
  pge.pc = 2;
  pge.block = 16;
  EXPECT_EQ(pge.grid(), "4x2b16");
}

TEST(PlanTest, JsonRoundTripRejectsNonsense) {
  Plan p;
  p.algo = "pgeqrf_2d";
  p.pr = 4;
  p.pc = 2;
  p.block = 32;
  p.predicted_seconds = 1.5;
  p.source = "model";
  auto back = Plan::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pr, 4);
  EXPECT_EQ(back->block, 32);

  support::Json j = p.to_json();
  j.set("algo", "not_an_algo");
  EXPECT_FALSE(Plan::from_json(j).has_value());
  j = p.to_json();
  j.set("pr", -1);
  EXPECT_FALSE(Plan::from_json(j).has_value());
  j = p.to_json();
  j.set("schema", Plan::kSchemaVersion + 1);
  EXPECT_FALSE(Plan::from_json(j).has_value());
}

TEST(PlanTest, JsonRoundTripsKernelVariant) {
  Plan p;
  p.algo = "cqr_1d";
  p.d = 8;
  p.source = "model";
  p.kernel_variant = "avx2";
  auto back = Plan::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kernel_variant, "avx2");
  // Variant-less plans (heuristic source, pre-v2 semantics) stay valid.
  p.kernel_variant.clear();
  back = Plan::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->kernel_variant.empty());
}

TEST(PlannerTest, CandidatesCarryActiveKernelVariant) {
  const Planner planner(profile());
  const std::string active =
      lin::kernel::variant_name(lin::kernel::active_variant());
  for (const Plan& p : planner.candidates({8192, 128, 8, 1})) {
    EXPECT_EQ(p.kernel_variant, active) << p.algo << " " << p.grid();
  }
}

TEST(ProfileTest, MachineForSelectsVariantCalibration) {
  MachineProfile p = generic_profile();
  p.variants.push_back({"avx2", p.machine.gamma_s / 2.0,
                        p.machine.peak_gflops_node * 2.0,
                        p.machine.gamma_s / 4.0,
                        p.machine.peak_gflops_node * 4.0, {{1, 1.0}}});
  const model::Machine base = p.machine_at(1);
  const model::Machine fast = p.machine_for("avx2", 1);
  EXPECT_DOUBLE_EQ(fast.gamma_s, base.gamma_s / 2.0);
  // alpha/beta are variant-independent (network terms).
  EXPECT_DOUBLE_EQ(fast.alpha_s, base.alpha_s);
  EXPECT_DOUBLE_EQ(fast.beta_s, base.beta_s);
  // Unknown variants fall back to the profile's headline machine.
  const model::Machine fallback = p.machine_for("neon", 1);
  EXPECT_DOUBLE_EQ(fallback.gamma_s, base.gamma_s);
}

TEST(PlannerTest, EnumeratesAllThreeVariantFamilies) {
  const Planner planner(profile());
  const auto cands = planner.candidates({4096, 256, 8, 1});
  ASSERT_FALSE(cands.empty());
  bool has_1d = false;
  bool has_ca = false;
  bool has_pg = false;
  for (const Plan& p : cands) {
    has_1d |= p.algo == "cqr_1d";
    has_ca |= p.algo == "ca_cqr2";
    has_pg |= p.algo == "pgeqrf_2d";
    EXPECT_EQ(p.source, "model");
    EXPECT_GT(p.predicted_seconds, 0.0);
  }
  EXPECT_TRUE(has_1d);
  EXPECT_TRUE(has_ca);
  EXPECT_TRUE(has_pg);
  // Sorted ascending by predicted time.
  for (std::size_t i = 1; i < cands.size(); ++i) {
    EXPECT_LE(cands[i - 1].predicted_seconds, cands[i].predicted_seconds);
  }
}

TEST(PlannerTest, EveryCandidateIsExecutable) {
  const Planner planner(profile());
  for (const int p : {1, 2, 4, 8, 16}) {
    for (const auto& [m, n] : {std::pair<i64, i64>{1 << 14, 1 << 6},
                               {512, 512}, {100, 7}}) {
      if (m < n) continue;
      for (const Plan& plan : planner.candidates({m, n, p, 1})) {
        if (plan.algo == "cqr_1d") {
          EXPECT_EQ(plan.d, p);
        } else if (plan.algo == "ca_cqr2") {
          EXPECT_TRUE(grid::TunableGrid::valid_shape(p, plan.c, plan.d))
              << plan.grid() << " p=" << p;
          EXPECT_LE(static_cast<i64>(plan.c) * plan.c, n);
        } else {
          EXPECT_EQ(plan.pr * plan.pc, p) << plan.grid();
          EXPECT_GE(plan.block, 16);
        }
      }
    }
  }
}

TEST(PlannerTest, PlanIsDeterministic) {
  const Planner planner(profile());
  const ProblemKey key{16384, 128, 8, 1};
  const Plan a = planner.plan(key);
  const Plan b = planner.plan(key);
  EXPECT_EQ(a.algo, b.algo);
  EXPECT_EQ(a.grid(), b.grid());
  EXPECT_EQ(a.predicted_seconds, b.predicted_seconds);
}

TEST(PlannerTest, ExtremelyTallSkinnyAvoidsWideGrids) {
  // 2^24 x 32 on 8 ranks: the communication-optimal c is ~(Pn/m)^(1/3)
  // << 1, so a CholeskyQR-family 1D layout must win over c=2 grids and
  // the Householder baseline (the paper's Table I regime).
  const Planner planner(profile());
  const Plan p = planner.plan({i64{1} << 24, 32, 8, 1});
  EXPECT_TRUE(p.algo == "cqr_1d" ||
              (p.algo == "ca_cqr2" && p.c == 1))
      << p.algo << " " << p.grid();
}

TEST(PlannerTest, ThreadSpeedupLowersGammaOnly) {
  MachineProfile prof = profile();
  prof.scaling = {{1, 1.0}, {4, 3.0}};
  EXPECT_DOUBLE_EQ(prof.thread_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(prof.thread_speedup(2), 1.0);  // no entry: conservative
  EXPECT_DOUBLE_EQ(prof.thread_speedup(4), 3.0);
  EXPECT_DOUBLE_EQ(prof.thread_speedup(64), 3.0);  // never extrapolates
  const model::Machine m1 = prof.machine_at(1);
  const model::Machine m4 = prof.machine_at(4);
  EXPECT_DOUBLE_EQ(m4.gamma_s * 3.0, m1.gamma_s);
  EXPECT_DOUBLE_EQ(m4.alpha_s, m1.alpha_s);
  EXPECT_DOUBLE_EQ(m4.beta_s, m1.beta_s);
}

TEST(PlannerTest, FingerprintSeparatesProfiles) {
  MachineProfile a = profile();
  MachineProfile b = profile();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.machine.gamma_s *= 2.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  MachineProfile c = profile();
  c.scaling.push_back({2, 1.5});
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(PlannerTest, RejectsBadKeys) {
  const Planner planner(profile());
  EXPECT_THROW((void)planner.candidates({10, 20, 4, 1}), Error);
  EXPECT_THROW((void)planner.candidates({10, 5, 0, 1}), Error);
}

TEST(ProfileTest, JsonRejectsBrokenProfiles) {
  const MachineProfile p = profile();
  auto ok = MachineProfile::from_json(p.to_json());
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->fingerprint(), p.fingerprint());

  support::Json j = p.to_json();
  j.set("gamma_s", 0.0);
  EXPECT_FALSE(MachineProfile::from_json(j).has_value());
  j = p.to_json();
  j.set("schema", MachineProfile::kSchemaVersion + 1);
  EXPECT_FALSE(MachineProfile::from_json(j).has_value());
  EXPECT_FALSE(MachineProfile::from_json(support::Json("text")).has_value());
}

}  // namespace
}  // namespace cacqr::tune
