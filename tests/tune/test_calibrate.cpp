#include <gtest/gtest.h>

#include "cacqr/tune/calibrate.hpp"

namespace cacqr::tune {
namespace {

TEST(CalibrateTest, QuickCalibrationProducesUsableProfile) {
  const MachineProfile p = calibrate({.quick = true, .reps = 1, .ranks = 2});
  EXPECT_EQ(p.calibrated, "measured");
  EXPECT_EQ(p.host, host_fingerprint());

  // Fitted parameters are positive, finite, and physically ordered:
  // a flop is cheaper than a transferred word, a word cheaper than a
  // whole message.
  EXPECT_GT(p.machine.gamma_s, 0.0);
  EXPECT_GT(p.machine.beta_s, 0.0);
  EXPECT_GT(p.machine.alpha_s, 0.0);
  EXPECT_LT(p.machine.gamma_s, 1e-6);   // > 1 MFLOP/s, surely
  EXPECT_LT(p.machine.alpha_s, 1.0);    // < 1 s per message, surely
  EXPECT_GE(p.machine.alpha_s, p.machine.beta_s);

  // Kernel table covers the sweep and carries positive rates.
  ASSERT_GE(p.kernels.size(), 3u);
  bool has_gram = false;
  for (const KernelSample& s : p.kernels) {
    EXPECT_GT(s.gflops, 0.0) << s.kernel;
    has_gram |= s.kernel == "gram";
  }
  EXPECT_TRUE(has_gram);

  // Thread-scaling table starts at {1, 1} and never claims slowdown.
  ASSERT_FALSE(p.scaling.empty());
  EXPECT_EQ(p.scaling.front().threads, 1);
  EXPECT_DOUBLE_EQ(p.scaling.front().speedup, 1.0);
  for (const ThreadScaling& s : p.scaling) EXPECT_GE(s.speedup, 1.0);
}

TEST(CalibrateTest, ProfileSurvivesSerialization) {
  const MachineProfile p = calibrate({.quick = true, .reps = 1, .ranks = 2});
  auto back = MachineProfile::from_json(p.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->machine.alpha_s, p.machine.alpha_s);
  EXPECT_EQ(back->machine.beta_s, p.machine.beta_s);
  EXPECT_EQ(back->machine.gamma_s, p.machine.gamma_s);
  EXPECT_EQ(back->fingerprint(), p.fingerprint());
  EXPECT_EQ(back->kernels.size(), p.kernels.size());
  EXPECT_EQ(back->scaling.size(), p.scaling.size());
}

TEST(CalibrateTest, HostFingerprintIsStable) {
  EXPECT_EQ(host_fingerprint(), host_fingerprint());
  EXPECT_NE(host_fingerprint().find("host:"), std::string::npos);
  EXPECT_NE(host_fingerprint().find("|hw:"), std::string::npos);
}

TEST(CalibrateTest, RejectsDegenerateOptions) {
  EXPECT_THROW((void)calibrate({.ranks = 1}), Error);
}

}  // namespace
}  // namespace cacqr::tune
