#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/tune/cache.hpp"

namespace cacqr::core {
namespace {

namespace fs = std::filesystem;

/// Planned modes must produce exactly the bits the equivalent explicit
/// configuration produces: planning only *selects*, it never changes the
/// executed schedule.
TEST(FactorizePlanTest, ModelPlanMatchesExplicitOptionsBitwise) {
  rt::Runtime::run(8, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(301, 96, 16);
    const tune::MachineProfile profile = tune::generic_profile();
    FactorizeOptions planned;
    planned.plan_mode = PlanMode::model;
    planned.profile = &profile;
    const FactorizeResult res = factorize(a, world, planned);
    // "cache" when a CACQR_TUNE_DIR from a previous suite pass already
    // holds this (deterministic, identical) plan.
    EXPECT_TRUE(res.plan.source == "model" || res.plan.source == "cache")
        << res.plan.source;

    if (res.algo == "ca_cqr") {
      const FactorizeResult ref =
          factorize(a, world, {.c = res.c, .d = res.d});
      EXPECT_EQ(lin::max_abs_diff(res.q, ref.q), 0.0);
      EXPECT_EQ(lin::max_abs_diff(res.r, ref.r), 0.0);
    } else {
      // A non-CA winner can't be reproduced through explicit c/d options;
      // correctness is still required.
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-11);
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-11);
    }
  });
}

TEST(FactorizePlanTest, ModelPlanPicks1dForExtremeAspect) {
  // 4096 x 8 on 4 ranks: communication-optimal c is far below 1, so the
  // planner must select the 1D CholeskyQR2 family, and the result must
  // match a direct explicit run of the same family bit for bit.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(302, 4096, 8);
    const tune::MachineProfile profile = tune::generic_profile();
    FactorizeOptions planned;
    planned.plan_mode = PlanMode::model;
    planned.profile = &profile;
    const FactorizeResult res = factorize(a, world, planned);
    EXPECT_TRUE(res.algo == "cqr_1d" || (res.algo == "ca_cqr" && res.c == 1))
        << res.algo;
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-12);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-12);
  });
}

TEST(FactorizePlanTest, AllVariantsDispatchCorrectly) {
  // Force each variant through the plan execution path (bypassing the
  // planner) by seeding the cache with a hand-written plan.
  const std::string dir =
      (fs::temp_directory_path() / "cacqr_dispatch_test").string();
  fs::remove_all(dir);
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);

  const tune::MachineProfile profile = tune::generic_profile();
  const tune::PlanCache cache(dir);

  struct Case {
    tune::Plan plan;
    const char* expect_algo;
    int ranks;
    i64 m;
    i64 n;
  };
  std::vector<Case> cases;
  {
    tune::Plan p;
    p.algo = "cqr_1d";
    p.d = 4;
    cases.push_back({p, "cqr_1d", 4, 128, 32});
    p = {};
    p.algo = "ca_cqr2";
    p.c = 2;
    p.d = 2;
    cases.push_back({p, "ca_cqr", 8, 160, 32});
    p = {};
    p.algo = "pgeqrf_2d";
    p.pr = 2;
    p.pc = 2;
    p.block = 16;
    cases.push_back({p, "pgeqrf_2d", 4, 160, 32});
    // Same pgeqrf grid on a NON-divisible shape: exercises the
    // block-cycle padding path (m 150 -> 160, n 30 -> 32 with the
    // delta-identity augmentation) and the stripping afterwards.
    cases.push_back({p, "pgeqrf_2d", 4, 150, 30});
  }

  for (const Case& c : cases) {
    // Unique shape-per-case keys keep the plan memo and cache distinct.
    cache.store(profile.fingerprint(),
                tune::ProblemKey{c.m, c.n, c.ranks, 1}, c.plan);
    rt::Runtime::run(c.ranks, [&](rt::Comm& world) {
      const lin::Matrix a = lin::hashed_matrix(303, c.m, c.n);
      FactorizeOptions opts;
      opts.plan_mode = PlanMode::model;
      opts.profile = &profile;
      const FactorizeResult res = factorize(a, world, opts);
      EXPECT_EQ(res.algo, c.expect_algo);
      EXPECT_EQ(res.plan.source, "cache");
      EXPECT_EQ(res.q.rows(), c.m);
      EXPECT_EQ(res.q.cols(), c.n);
      EXPECT_EQ(res.r.rows(), c.n);
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-10) << c.expect_algo;
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-10)
          << c.expect_algo;
      EXPECT_TRUE(lin::is_upper_triangular(res.r));
    });
  }

  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
  fs::remove_all(dir);
}

TEST(FactorizePlanTest, CachedPlanForOtherKernelVariantIsAMiss) {
  // A cached plan was scored (and possibly trial-timed) under one
  // micro-kernel variant; if the dispatcher now runs a different one the
  // plan describes a different compute engine and must be re-planned.
  const std::string dir =
      (fs::temp_directory_path() / "cacqr_variant_gate_test").string();
  fs::remove_all(dir);
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);

  const tune::MachineProfile profile = tune::generic_profile();
  const tune::PlanCache cache(dir);
  const std::string active =
      lin::kernel::variant_name(lin::kernel::active_variant());

  // A valid plan stamped with a variant that is NOT the active one.
  tune::Plan stale;
  stale.algo = "cqr_1d";
  stale.d = 4;
  stale.source = "measured";
  stale.measured_seconds = 1.0;
  stale.kernel_variant = active == "generic" ? "avx2" : "generic";
  cache.store(profile.fingerprint(), tune::ProblemKey{256, 16, 4, 1}, stale);

  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(308, 256, 16);
    FactorizeOptions opts;
    opts.plan_mode = PlanMode::model;
    opts.profile = &profile;
    const FactorizeResult res = factorize(a, world, opts);
    // The stale-variant entry must not serve the plan; the planner re-ran
    // and stamped the active variant on both the plan and the result.
    EXPECT_EQ(res.plan.source, "model");
    EXPECT_EQ(res.plan.kernel_variant, active);
    EXPECT_EQ(res.kernel_variant, active);
  });

  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
  fs::remove_all(dir);
}

TEST(FactorizePlanTest, CachedPlanForOtherPrecisionIsAMiss) {
  // The precision twin of the kernel-variant gate: a cached plan scored
  // under one precision describes different arithmetic and different
  // collective payloads, so it must not serve a request for another.
  const std::string dir =
      (fs::temp_directory_path() / "cacqr_precision_gate_test").string();
  fs::remove_all(dir);
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);

  const tune::MachineProfile profile = tune::generic_profile();
  const tune::PlanCache cache(dir);
  const std::string active =
      lin::kernel::variant_name(lin::kernel::active_variant());

  // A valid measured plan whose variant matches the dispatcher but whose
  // precision does NOT match the (default fp64) request.
  tune::Plan stale;
  stale.algo = "cqr_1d";
  stale.d = 4;
  stale.source = "measured";
  stale.measured_seconds = 1.0;
  stale.kernel_variant = active;
  stale.precision = Precision::mixed;
  cache.store(profile.fingerprint(), tune::ProblemKey{288, 16, 4, 1}, stale);

  // Control: the same plan stamped fp64 under a different shape IS
  // served -- proving the lookup machinery hits under these keys and the
  // precision mismatch alone forces the re-plan above.
  tune::Plan good = stale;
  good.precision = Precision::fp64;
  cache.store(profile.fingerprint(), tune::ProblemKey{320, 16, 4, 1}, good);

  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(309, 288, 16);
    FactorizeOptions opts;
    opts.plan_mode = PlanMode::model;
    opts.profile = &profile;
    const FactorizeResult res = factorize(a, world, opts);
    EXPECT_EQ(res.plan.source, "model");
    EXPECT_EQ(res.plan.precision, Precision::fp64);

    const lin::Matrix b = lin::hashed_matrix(310, 320, 16);
    const FactorizeResult hit = factorize(b, world, opts);
    EXPECT_EQ(hit.plan.source, "cache");
    EXPECT_DOUBLE_EQ(hit.plan.measured_seconds, 1.0);

    // A mixed-precision request keys separately (the precision is part
    // of the problem key), so neither entry above can serve it either.
    opts.precision = Precision::mixed;
    const FactorizeResult mixed = factorize(a, world, opts);
    EXPECT_EQ(mixed.plan.source, "model");
    EXPECT_EQ(mixed.plan.precision, Precision::mixed);
  });

  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
  fs::remove_all(dir);
}

TEST(FactorizePlanTest, MeasuredModeAgreesAcrossRanksAndCaches) {
  const std::string dir =
      (fs::temp_directory_path() / "cacqr_measured_test").string();
  fs::remove_all(dir);
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);

  const tune::MachineProfile profile = tune::generic_profile();
  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(304, 192, 24);
    FactorizeOptions opts;
    opts.plan_mode = PlanMode::measured;
    opts.profile = &profile;
    opts.plan_top_k = 2;
    const FactorizeResult res = factorize(a, world, opts);
    EXPECT_EQ(res.plan.source, "measured");
    EXPECT_GT(res.plan.measured_seconds, 0.0);
    EXPECT_LT(lin::orthogonality_error(res.q), 1e-10);
    EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-10);
  });

  // The winner was persisted; a fresh run in this process hits the memo,
  // but the FILE must also contain it (what another process would load).
  const tune::PlanCache cache(dir);
  const auto hit = cache.load(profile.fingerprint(),
                              tune::ProblemKey{192, 24, 4, 1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->measured_seconds, 0.0);

  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
  fs::remove_all(dir);
}

TEST(FactorizePlanTest, MeasuredAfterModelStillRunsTrials) {
  // A model-mode call memoizes its plan; a measured-mode call on the
  // SAME problem must not be satisfied by that entry (it never went
  // through trials) -- it has to trial and record a measured time.
  // Isolated cache dir: a CACQR_TUNE_DIR persisting across suite runs
  // would otherwise pre-seed the measured winner.
  const std::string dir =
      (fs::temp_directory_path() / "cacqr_measured_after_model").string();
  fs::remove_all(dir);
  const char* orig = std::getenv("CACQR_TUNE_DIR");
  const std::string saved = orig != nullptr ? orig : "";
  ::setenv("CACQR_TUNE_DIR", dir.c_str(), 1);

  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(307, 224, 16);
    const tune::MachineProfile profile = tune::generic_profile();
    FactorizeOptions opts;
    opts.profile = &profile;
    opts.plan_mode = PlanMode::model;
    const FactorizeResult model_res = factorize(a, world, opts);
    EXPECT_EQ(model_res.plan.measured_seconds, 0.0);

    opts.plan_mode = PlanMode::measured;
    opts.plan_top_k = 2;
    const FactorizeResult measured_res = factorize(a, world, opts);
    EXPECT_EQ(measured_res.plan.source, "measured");
    EXPECT_GT(measured_res.plan.measured_seconds, 0.0);
    EXPECT_LT(lin::orthogonality_error(measured_res.q), 1e-10);

    // And the measured winner now serves later model-mode calls (the
    // cache remembering what won).
    opts.plan_mode = PlanMode::model;
    const FactorizeResult again = factorize(a, world, opts);
    EXPECT_EQ(again.plan.source, "measured");
    EXPECT_GT(again.plan.measured_seconds, 0.0);
  });

  if (orig != nullptr) {
    ::setenv("CACQR_TUNE_DIR", saved.c_str(), 1);
  } else {
    ::unsetenv("CACQR_TUNE_DIR");
  }
  fs::remove_all(dir);
}

TEST(FactorizePlanTest, HeuristicDefaultIgnoresPlannerMachinery) {
  // The default options must follow the historical heuristic path: no
  // planner, no cache, algo == "ca_cqr", plan.source == "heuristic" --
  // and identical factors to an explicit run of the chosen grid.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(305, 64, 16);
    const FactorizeResult res = factorize(a, world);
    EXPECT_EQ(res.algo, "ca_cqr");
    EXPECT_EQ(res.plan.source, "heuristic");
    const auto [c, d] = choose_grid(4, 64, 16);
    EXPECT_EQ(res.c, c);
    EXPECT_EQ(res.d, d);
    const FactorizeResult ref = factorize(a, world, {.c = c, .d = d});
    EXPECT_EQ(lin::max_abs_diff(res.q, ref.q), 0.0);
    EXPECT_EQ(lin::max_abs_diff(res.r, ref.r), 0.0);
  });
}

TEST(FactorizePlanTest, PlannedModesHandleAwkwardShapes) {
  // Prime dimensions exercise every variant's padding rules.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const tune::MachineProfile profile = tune::generic_profile();
    for (const auto& [m, n] : {std::pair<i64, i64>{101, 13}, {67, 5}}) {
      const lin::Matrix a = lin::hashed_matrix(306, m, n);
      FactorizeOptions opts;
      opts.plan_mode = PlanMode::model;
      opts.profile = &profile;
      const FactorizeResult res = factorize(a, world, opts);
      EXPECT_EQ(res.q.rows(), m);
      EXPECT_EQ(res.q.cols(), n);
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-11) << m << "x" << n;
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-11);
    }
  });
}

}  // namespace
}  // namespace cacqr::core
