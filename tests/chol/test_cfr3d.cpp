#include <gtest/gtest.h>

#include <tuple>

#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/factor.hpp"
#include "cacqr/lin/generate.hpp"

namespace cacqr::chol {
namespace {

using dist::DistMatrix;

/// Deterministic SPD test matrix every rank can build locally: a hashed
/// tall matrix's Gram matrix plus a diagonal shift.
lin::Matrix make_spd(u64 seed, i64 n) {
  lin::Matrix tall = lin::hashed_matrix(seed, 4 * n, n);
  lin::Matrix a(n, n);
  lin::gram(1.0, tall, 0.0, a);
  for (i64 i = 0; i < n; ++i) a(i, i) += 0.5 * static_cast<double>(n);
  return a;
}

TEST(BaseCaseTest, EffectiveBaseCaseRespectsDivisibility) {
  // n=16, g=2: paper default target = max(2, 16/4) = 4.
  EXPECT_EQ(effective_base_case(16, 2, 0), 4);
  // Explicit request rounds to a reachable level.
  EXPECT_EQ(effective_base_case(16, 2, 8), 8);
  EXPECT_EQ(effective_base_case(16, 2, 16), 16);
  // Request below the grid dimension clamps to g.
  EXPECT_EQ(effective_base_case(16, 4, 1), 4);
  // Halving stops when divisibility by g would break: n=24, g=2 halves to
  // 12 and 6 (target max(2, 6)=6), never 3.
  EXPECT_EQ(effective_base_case(24, 2, 0), 6);
  // g=1 degenerates to the sequential base case at the target size.
  EXPECT_EQ(effective_base_case(64, 1, 0), 64);
}

using CfrParam = std::tuple<int, int, int>;  // g, n-per-g units, base_case

class Cfr3dSweep : public ::testing::TestWithParam<CfrParam> {};

TEST_P(Cfr3dSweep, MatchesSequentialCholInv) {
  const auto [g, nu, bc] = GetParam();
  const i64 n = static_cast<i64>(nu) * g;
  rt::Runtime::run(g * g * g, [&, g = g, bc = bc](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    lin::Matrix a = make_spd(1234, n);
    auto da = DistMatrix::from_global_on_cube(a, grid);

    auto [l, y] = cfr3d(da, grid, {.base_case = bc});

    lin::Matrix lg = gather(l, grid.slice());
    lin::Matrix yg = gather(y, grid.slice());
    auto seq = lin::cholinv(a);

    EXPECT_LT(lin::max_abs_diff(lg, seq.l), 1e-9 * (1.0 + lin::max_abs(seq.l)))
        << "g=" << g << " n=" << n << " bc=" << bc;
    EXPECT_LT(lin::max_abs_diff(yg, seq.l_inv),
              1e-9 * (1.0 + lin::max_abs(seq.l_inv)));
  });
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSizes, Cfr3dSweep,
    ::testing::Values(CfrParam{1, 16, 0}, CfrParam{2, 8, 0},
                      CfrParam{2, 8, 4}, CfrParam{2, 8, 8},
                      CfrParam{2, 16, 2}, CfrParam{3, 8, 0},
                      CfrParam{4, 4, 0}, CfrParam{2, 4, 2}));

TEST(Cfr3dTest, FactorReconstructsInput) {
  const int g = 2;
  const i64 n = 16;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    lin::Matrix a = make_spd(99, n);
    auto da = DistMatrix::from_global_on_cube(a, grid);
    auto [l, y] = cfr3d(da, grid);
    lin::Matrix lg = gather(l, grid.slice());
    // L L^T == A.
    lin::Matrix back(n, n);
    lin::gemm(lin::Trans::N, lin::Trans::T, 1.0, lg, lg, 0.0, back);
    EXPECT_LT(lin::max_abs_diff(back, a), 1e-9 * (1.0 + lin::max_abs(a)));
    // L Y == I.
    lin::Matrix yg = gather(y, grid.slice());
    lin::Matrix prod(n, n);
    lin::matmul(lg, yg, prod);
    EXPECT_LT(lin::max_abs_diff(prod, lin::Matrix::identity(n)), 1e-9);
  });
}

TEST(Cfr3dTest, StrictUpperTrianglesAreZero) {
  const int g = 2;
  const i64 n = 8;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    auto da = DistMatrix::from_global_on_cube(make_spd(7, n), grid);
    auto [l, y] = cfr3d(da, grid);
    lin::Matrix lg = gather(l, grid.slice());
    lin::Matrix yg = gather(y, grid.slice());
    for (i64 j = 1; j < n; ++j) {
      for (i64 i = 0; i < j; ++i) {
        EXPECT_EQ(lg(i, j), 0.0);
        EXPECT_EQ(yg(i, j), 0.0);
      }
    }
  });
}

TEST(Cfr3dTest, ThrowsOnIndefiniteEverywhere) {
  const int g = 2;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    lin::Matrix a = make_spd(55, 8);
    a(5, 5) = -100.0;  // break definiteness
    auto da = DistMatrix::from_global_on_cube(a, grid);
    EXPECT_THROW((void)cfr3d(da, grid), NotSpdError);
  });
}

TEST(Cfr3dTest, RejectsNonSquare) {
  const int g = 2;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    DistMatrix bad(8, 4, g, g, grid.coords().y, grid.coords().x);
    EXPECT_THROW((void)cfr3d(bad, grid), DimensionError);
  });
}

TEST(Cfr3dTest, DeterministicAcrossRuns) {
  const int g = 2;
  const i64 n = 16;
  lin::Matrix first;
  for (int run = 0; run < 2; ++run) {
    rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
      grid::CubeGrid grid(world, g);
      auto da = DistMatrix::from_global_on_cube(make_spd(3, n), grid);
      auto [l, y] = cfr3d(da, grid);
      (void)y;
      if (world.rank() == 0) {
        lin::Matrix lg = gather(l, grid.slice());
        if (run == 0) {
          first = lg;
        } else {
          EXPECT_EQ(lg, first);  // bitwise reproducible
        }
      } else {
        (void)gather(l, grid.slice());
      }
    });
  }
}

TEST(Cfr3dInverseDepthTest, PartialInverseIsBlockDiagonal) {
  // inverse_depth = 1: Y must be exactly [Y11 0; 0 Y22] with each half a
  // true inverse of the corresponding L block; L must be unchanged.
  const int g = 2;
  const i64 n = 16;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    lin::Matrix a = make_spd(77, n);
    auto da = DistMatrix::from_global_on_cube(a, grid);
    auto full = cfr3d(da, grid);
    auto part = cfr3d(da, grid, {.inverse_depth = 1});

    lin::Matrix l_full = gather(full.l, grid.slice());
    lin::Matrix l_part = gather(part.l, grid.slice());
    EXPECT_LT(lin::max_abs_diff(l_full, l_part),
              1e-10 * (1.0 + lin::max_abs(l_full)));

    lin::Matrix y = gather(part.l_inv, grid.slice());
    // Off-diagonal block zero.
    for (i64 j = 0; j < n / 2; ++j) {
      for (i64 i = n / 2; i < n; ++i) EXPECT_EQ(y(i, j), 0.0);
    }
    // Diagonal blocks invert the L blocks.
    for (int blk = 0; blk < 2; ++blk) {
      const i64 o = blk * n / 2;
      lin::Matrix prod(n / 2, n / 2);
      lin::matmul(l_part.sub(o, o, n / 2, n / 2), y.sub(o, o, n / 2, n / 2),
                  prod);
      EXPECT_LT(lin::max_abs_diff(prod, lin::Matrix::identity(n / 2)), 1e-9)
          << "block " << blk;
    }
  });
}

TEST(Cfr3dInverseDepthTest, DepthTwoGivesFourBlocks) {
  const int g = 2;
  const i64 n = 32;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    lin::Matrix a = make_spd(78, n);
    auto da = DistMatrix::from_global_on_cube(a, grid);
    auto part = cfr3d(da, grid, {.base_case = 4, .inverse_depth = 2});
    lin::Matrix y = gather(part.l_inv, grid.slice());
    lin::Matrix l = gather(part.l, grid.slice());
    const i64 bs = n / 4;
    for (i64 bj = 0; bj < 4; ++bj) {
      for (i64 bi = 0; bi < 4; ++bi) {
        auto blk = y.sub(bi * bs, bj * bs, bs, bs);
        if (bi != bj) {
          EXPECT_EQ(lin::max_abs(blk), 0.0) << bi << "," << bj;
        } else {
          lin::Matrix prod(bs, bs);
          lin::matmul(l.sub(bi * bs, bi * bs, bs, bs), blk, prod);
          EXPECT_LT(lin::max_abs_diff(prod, lin::Matrix::identity(bs)), 1e-9);
        }
      }
    }
  });
}

TEST(Cfr3dInverseDepthTest, DepthClampedToRecursion) {
  // Requesting more depth than recursion levels must not break anything.
  const int g = 2;
  rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
    grid::CubeGrid grid(world, g);
    auto da = DistMatrix::from_global_on_cube(make_spd(79, 8), grid);
    EXPECT_NO_THROW((void)cfr3d(da, grid, {.inverse_depth = 10}));
  });
}

TEST(Cfr3dCostTest, SmallerBaseCaseMeansMoreMessages) {
  // The n0 knob trades synchronization (alpha) against bandwidth (beta):
  // deeper recursion -> more messages (paper Section II-D).
  const int g = 2;
  const i64 n = 32;
  i64 msgs_deep = 0, msgs_shallow = 0;
  auto run_with = [&](i64 bc) {
    auto per_rank = rt::Runtime::run(g * g * g, [&](rt::Comm& world) {
      grid::CubeGrid grid(world, g);
      auto da = DistMatrix::from_global_on_cube(make_spd(11, n), grid);
      (void)cfr3d(da, grid, {.base_case = bc});
    });
    return rt::max_counters(per_rank).msgs;
  };
  msgs_deep = run_with(2);      // n0 = 2: 4 recursion levels
  msgs_shallow = run_with(16);  // n0 = 16: 1 recursion level
  EXPECT_GT(msgs_deep, msgs_shallow);
}

}  // namespace
}  // namespace cacqr::chol
