#include <gtest/gtest.h>

#include "cacqr/model/sweep.hpp"

namespace cacqr::model {
namespace {

TEST(SweepTest, ValidGridsEnumeration) {
  // P = 64: c in {1, 2, 4}: (1,64), (2,16), (4,4).
  const auto grids = valid_grids(64);
  ASSERT_EQ(grids.size(), 3u);
  EXPECT_EQ(grids[0], (std::pair<i64, i64>{1, 64}));
  EXPECT_EQ(grids[1], (std::pair<i64, i64>{2, 16}));
  EXPECT_EQ(grids[2], (std::pair<i64, i64>{4, 4}));
  // P = 8: (1,8), (2,2).  c=2 -> d=2, 2 | 2 ok.
  EXPECT_EQ(valid_grids(8).size(), 2u);
  // Prime P: only 1D.
  EXPECT_EQ(valid_grids(7).size(), 1u);
}

TEST(SweepTest, TallSkinnyPrefersSmallC) {
  const Machine s2 = stampede2();
  // 2^25 x 128: extremely overdetermined -> 1D wins.
  const auto best = best_cacqr2(double(1 << 30), 128, 4096, s2);
  EXPECT_EQ(best.c, 1);
}

TEST(SweepTest, SquarePrefersLargeC) {
  const Machine s2 = stampede2();
  const auto best = best_cacqr2(1 << 14, 1 << 14, 4096, s2);
  EXPECT_EQ(best.c, 16);  // full P^(1/3) cube
}

TEST(SweepTest, EvalAgreesWithCost) {
  const Machine s2 = stampede2();
  const auto ch = eval_cacqr2(1 << 20, 1 << 10, 4, 256, s2);
  const Cost direct = cost_ca_cqr2(1 << 20, 1 << 10, 4, 256);
  EXPECT_DOUBLE_EQ(ch.seconds, direct.time(s2));
  EXPECT_EQ(ch.c, 4);
  EXPECT_EQ(ch.d, 256);
}

TEST(SweepTest, PgeqrfSweepPicksValidConfig) {
  const Machine s2 = stampede2();
  const auto best = best_pgeqrf(1 << 22, 1 << 11, 4096, s2);
  EXPECT_EQ(best.pr * best.pc, 4096);
  EXPECT_TRUE(best.block == 16 || best.block == 32 || best.block == 64);
  EXPECT_GT(best.seconds, 0.0);
  // Tall matrices want tall grids.
  EXPECT_GT(best.pr, best.pc);
}

TEST(SweepTest, BestBeatsArbitrary) {
  const Machine s2 = stampede2();
  const double m = 1 << 22, n = 1 << 11;
  const auto best = best_cacqr2(m, n, 1024, s2);
  for (const auto& [c, d] : valid_grids(1024)) {
    EXPECT_LE(best.seconds, eval_cacqr2(m, n, c, d, s2).seconds + 1e-12);
  }
}

TEST(SweepTest, ImpossibleSweepThrows) {
  const Machine s2 = stampede2();
  // No grid fits: more ranks than matrix entries in each direction.
  EXPECT_THROW((void)best_cacqr2(2, 2, 4096, s2), Error);
}

}  // namespace
}  // namespace cacqr::model
