#include <gtest/gtest.h>

#include <cmath>

#include "cacqr/model/costs.hpp"

namespace cacqr::model {
namespace {

TEST(CostArithmeticTest, SumAndScale) {
  Cost a{2, 100, 1000, 50};
  Cost b{3, 200, 500, 80};
  Cost s = a + b;
  EXPECT_DOUBLE_EQ(s.alpha, 5);
  EXPECT_DOUBLE_EQ(s.beta, 300);
  EXPECT_DOUBLE_EQ(s.gamma, 1500);
  EXPECT_DOUBLE_EQ(s.mem, 80);  // max, not sum: phases reuse memory
  Cost t = a.times(3.0);
  EXPECT_DOUBLE_EQ(t.alpha, 6);
  EXPECT_DOUBLE_EQ(t.beta, 300);
}

TEST(CostArithmeticTest, TimeUnderMachine) {
  Machine m;
  m.alpha_s = 1e-6;
  m.beta_s = 1e-9;
  m.gamma_s = 1e-11;
  Cost c{10, 1e6, 1e9, 0};
  EXPECT_NEAR(c.time(m), 10e-6 + 1e-3 + 1e-2, 1e-12);
}

TEST(CollectiveCostTest, SingleRankIsFree) {
  EXPECT_DOUBLE_EQ(cost_bcast(100, 1).alpha, 0);
  EXPECT_DOUBLE_EQ(cost_allreduce(100, 1).beta, 0);
  EXPECT_DOUBLE_EQ(cost_allgather(100, 1).alpha, 0);
  EXPECT_DOUBLE_EQ(cost_transpose(100, 1).beta, 0);
}

TEST(CollectiveCostTest, PaperFormulas) {
  // Section II-B: Bcast/Allreduce 2 lg P alpha + 2n beta (large-P limit);
  // Allgather lg P alpha + n beta.
  const double n = 1024, p = 64;
  EXPECT_DOUBLE_EQ(cost_bcast(n, p).alpha, 12);
  EXPECT_NEAR(cost_bcast(n, p).beta, 2 * n, 2 * n / p + 1);
  EXPECT_DOUBLE_EQ(cost_allreduce(n, p).alpha, 12);
  EXPECT_DOUBLE_EQ(cost_allgather(n, p).alpha, 6);
  EXPECT_NEAR(cost_allgather(n, p).beta, n, n / p + 1);
  EXPECT_DOUBLE_EQ(cost_transpose(n, p).alpha, 1);
  EXPECT_DOUBLE_EQ(cost_transpose(n, p).beta, n);
}

TEST(Mm3dCostTest, TableOneScaling) {
  // Table I: MM3D beta = (mn + nk + mk)/P^(2/3): doubling g (8x ranks)
  // cuts words 4x (in the large-P limit where (P-1)/P ~ 1); gamma = mnk/P:
  // cuts flops 8x exactly.
  const Cost c1 = cost_mm3d(4096, 4096, 4096, 16);
  const Cost c2 = cost_mm3d(4096, 4096, 4096, 32);
  EXPECT_NEAR(c1.beta / c2.beta, 4.0, 0.2);
  EXPECT_NEAR(c1.gamma / c2.gamma, 8.0, 1e-9);
  // alpha grows logarithmically.
  EXPECT_DOUBLE_EQ(c2.alpha - c1.alpha, 6.0);  // 6 collect. stages * lg 2
}

TEST(Cfr3dCostTest, SequentialDegenerate) {
  const Cost c = cost_cfr3d(256, 1);
  EXPECT_DOUBLE_EQ(c.alpha, 0);
  EXPECT_DOUBLE_EQ(c.beta, 0);
  EXPECT_NEAR(c.gamma, 2.0 * 256 * 256 * 256 / 3.0, 5e5);
}

TEST(Cfr3dCostTest, GammaDominatedByNCubedOverP) {
  // Table I: CFR3D gamma ~ n^3/P.
  const double n = 4096, g = 8;  // P = 512
  const Cost c = cost_cfr3d(n, g);
  const double n3_over_p = n * n * n / (g * g * g);
  EXPECT_GT(c.gamma, n3_over_p);
  EXPECT_LT(c.gamma, 4.0 * n3_over_p);
}

TEST(Cfr3dCostTest, BaseCaseKnobTradesAlphaForBeta) {
  const double n = 4096, g = 4;
  const Cost deep = cost_cfr3d(n, g, 64);      // more recursion levels
  const Cost shallow = cost_cfr3d(n, g, 1024); // fewer
  EXPECT_GT(deep.alpha, shallow.alpha);
  EXPECT_LT(deep.beta, shallow.beta);
}

TEST(CaCqr2CostTest, OneDSpecialCaseMatchesPaperTable) {
  // Table I, 1D-CQR: alpha ~ log P, beta ~ n^2, gamma ~ mn^2/P + n^3.
  const double m = 1 << 22, n = 256, p = 256;
  const Cost c = cost_cqr2_1d(m, n, p);
  EXPECT_LT(c.alpha, 10 * std::log2(p));
  // Two passes, each one Allreduce of the n x n Gram matrix (2n^2 words);
  // the R2*R1 composition is local at c == 1.
  EXPECT_NEAR(c.beta, 2 * 2 * n * n * (p - 1) / p, n * n / 4);
  const double gamma_expect = 2 * (2 * m * n * n / p + 2.0 / 3 * n * n * n);
  EXPECT_NEAR(c.gamma / gamma_expect, 1.0, 0.35);
}

TEST(CaCqr2CostTest, InterpolatesBetween1DAnd3D) {
  // For fixed P, sweeping c in [1, P^(1/3)] must trade alpha up / beta
  // down (for a square-ish matrix), with both endpoints consistent.
  const double m = 1 << 16, n = 1 << 14;
  const double p = 4096;
  const Cost c1 = cost_ca_cqr2(m, n, 1, p);
  const Cost c4 = cost_ca_cqr2(m, n, 4, 256);
  const Cost c16 = cost_ca_cqr2(m, n, 16, 16);
  EXPECT_LT(c1.alpha, c4.alpha);
  EXPECT_LT(c4.alpha, c16.alpha);
  EXPECT_GT(c1.beta, c4.beta);
  EXPECT_GT(c4.beta, c16.beta);
  EXPECT_GT(c1.gamma, c16.gamma);
}

TEST(CaCqr2CostTest, OptimalGridMatchesTableOneBound) {
  // Last Table I row: with c = (Pn/m)^(1/3), beta ~ (mn^2/P)^(2/3).
  const double m = 1 << 24, n = 1 << 12, p = 4096;
  const double c_opt = std::cbrt(p * n / m);  // = cbrt(4096*4096/2^24) = 1
  const double c_use = std::max(1.0, c_opt);
  const Cost c = cost_ca_cqr2(m, n, c_use, p / (c_use * c_use));
  const double bound = std::pow(m * n * n / p, 2.0 / 3.0);
  EXPECT_LT(c.beta, 40.0 * bound);
}

TEST(PgeqrfCostTest, AlphaScalesWithN) {
  // ScaLAPACK QR: alpha ~ n log pr (per-column allreduces).
  const Cost c1 = cost_pgeqrf_2d(1 << 20, 1 << 10, 64, 16, 32);
  const Cost c2 = cost_pgeqrf_2d(1 << 20, 1 << 11, 64, 16, 32);
  EXPECT_NEAR(c2.alpha / c1.alpha, 2.0, 0.2);
}

TEST(PgeqrfCostTest, GammaNearHouseholderOverP) {
  // Panel factorization and T formation are only pr-parallel (the panel
  // lives on one process column), adding ~2 b pc / n of overhead relative
  // to the Householder count; keep that term small to test the bulk.
  const double m = 1 << 20, n = 1 << 12, pr = 256, pc = 4;
  const Cost c = cost_pgeqrf_2d(m, n, pr, pc, 16, /*form_q=*/false);
  const double hh = (2 * m * n * n - 2.0 / 3 * n * n * n) / (pr * pc);
  EXPECT_NEAR(c.gamma / hh, 1.0, 0.15);
}

TEST(PgeqrfCostTest, PanelBottleneckGrowsWithPc) {
  // The same matrix on a wider grid pays more serialized panel work.
  const double m = 1 << 20, n = 1 << 10;
  const Cost tall = cost_pgeqrf_2d(m, n, 256, 4, 32, false);
  const Cost wide = cost_pgeqrf_2d(m, n, 4, 256, 32, false);
  EXPECT_GT(wide.gamma, tall.gamma);
}

TEST(TsqrCostTest, LatencyOptimalButBetaLogP) {
  const double m = 1 << 24, n = 512;
  const Cost c64 = cost_tsqr(m, n, 64);
  const Cost c4096 = cost_tsqr(m, n, 4096);
  // alpha ~ 2 log P + bcast.
  EXPECT_LT(c4096.alpha, 5 * std::log2(4096));
  // beta grows with log P (n^2 log P), unlike CQR2's flat n^2 terms.
  EXPECT_GT(c4096.beta, 1.5 * c64.beta);
}

TEST(MachineTest, PaperBalanceRatio) {
  // Section IV: "the ratio of peak flops to injection bandwidth is
  // roughly 8X higher on Stampede2".
  const Machine s2 = stampede2();
  const Machine bw = bluewaters();
  const double s2_balance = s2.peak_gflops_node * 1e9 / 12.5e9;
  const double bw_balance = bw.peak_gflops_node * 1e9 / 9.6e9;
  EXPECT_NEAR(s2_balance / bw_balance, 7.4, 1.0);
  // The per-rank calibrated balance preserves the ordering.
  EXPECT_GT(s2.flops_per_word(), 2.0 * bw.flops_per_word());
}

TEST(MachineTest, GflopsPerNodeConvention) {
  // 2mn^2 - 2n^3/3 over time and nodes.
  const double m = 1024, n = 64;
  const double flops = 2 * m * n * n - 2.0 / 3 * n * n * n;
  EXPECT_NEAR(gflops_per_node(m, n, 1.0, 2.0), flops / 2e9, 1e-12);
}

}  // namespace
}  // namespace cacqr::model
