/// \file test_validation_schema.cpp
/// \brief The bench_model_validation artifact contract: run_validation
///        measures the instrumented section through the publish channel
///        (so it holds under process transports too), keeps the modeled
///        clock and the wall clock as SEPARATE fields (the historical bug
///        was the modeled clock printing as a measurement), and
///        validation_to_json emits the versioned schema downstream
///        tooling parses (docs/benchmarks.md).

#include <gtest/gtest.h>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"
#include "cacqr/model/validation.hpp"

namespace cacqr::model {
namespace {

using support::Json;

/// One small CA-CQR2 configuration, measured for real.
std::vector<ValidationRow> sample_rows() {
  const Machine s2 = stampede2();
  std::vector<ValidationRow> rows;
  rows.push_back(run_validation(
      "CA-CQR2 128x16 c=1 d=4", 4, s2,
      [](rt::Comm& world) {
        grid::TunableGrid g(world, 1, 4);
        auto da = dist::DistMatrix::from_global_on_tunable(
            lin::hashed_matrix(61, 128, 16), g);
        MeasuredSection section(world);
        (void)core::ca_cqr2(da, g);
      },
      cost_ca_cqr2(128.0, 16.0, 1, 4), rt::TransportKind::modeled));
  return rows;
}

TEST(ValidationSchemaTest, RowSeparatesMeasurementFromModel) {
  const std::vector<ValidationRow> rows = sample_rows();
  ASSERT_EQ(rows.size(), 1u);
  const ValidationRow& r = rows.front();
  EXPECT_EQ(r.ranks, 4);
  // The section did real communication and flops.
  EXPECT_GT(r.measured.msgs, 0);
  EXPECT_GT(r.measured.words, 0);
  EXPECT_GT(r.measured.flops, 0);
  // Three distinct timescales, all populated: the LogP clock, the
  // analytic prediction, and the stopwatch.
  EXPECT_GT(r.modeled_clock_s, 0.0);
  EXPECT_GT(r.analytic_s, 0.0);
  EXPECT_GT(r.wall_s, 0.0);
  // The section's modeled span cannot exceed the whole run's clock.
  EXPECT_LE(r.measured.time, r.modeled_clock_s);
}

TEST(ValidationSchemaTest, SectionDeltaExcludesSetup) {
  // The same section measured with and without a setup-side collective
  // must report identical deltas: MeasuredSection starts counting at its
  // construction, not at rank launch.
  const Machine s2 = stampede2();
  auto body = [](rt::Comm& world, bool extra_setup) {
    if (extra_setup) {
      std::vector<double> v(256, 1.0);
      world.allreduce_sum(v);
    }
    MeasuredSection section(world);
    std::vector<double> w(64, 2.0);
    world.allreduce_sum(w);
  };
  const ValidationRow plain = run_validation(
      "plain", 4, s2, [&](rt::Comm& w) { body(w, false); }, Cost{},
      rt::TransportKind::modeled);
  const ValidationRow padded = run_validation(
      "padded", 4, s2, [&](rt::Comm& w) { body(w, true); }, Cost{},
      rt::TransportKind::modeled);
  EXPECT_EQ(plain.measured.msgs, padded.measured.msgs);
  EXPECT_EQ(plain.measured.words, padded.measured.words);
  EXPECT_EQ(plain.measured.flops, padded.measured.flops);
}

TEST(ValidationSchemaTest, JsonMatchesTheV1Schema) {
  const Machine s2 = stampede2();
  const Json doc =
      validation_to_json(sample_rows(), s2, rt::TransportKind::modeled);

  EXPECT_EQ(doc["schema"].as_string(), "cacqr.model_validation.v1");
  EXPECT_EQ(doc["bench"].as_string(), "bench_model_validation");
  EXPECT_EQ(doc["transport"].as_string(), "modeled");
  EXPECT_EQ(doc["machine"].as_string(), s2.name);
  EXPECT_EQ(doc["alpha_s"].as_number(), s2.alpha_s);
  EXPECT_EQ(doc["beta_s"].as_number(), s2.beta_s);
  EXPECT_EQ(doc["gamma_s"].as_number(), s2.gamma_s);

  const Json& rows = doc["rows"];
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 1u);
  const Json& r = rows.at(0);
  EXPECT_EQ(r["configuration"].as_string(), "CA-CQR2 128x16 c=1 d=4");
  EXPECT_EQ(r["ranks"].as_int(), 4);
  ASSERT_TRUE(r["measured"].is_object());
  EXPECT_GT(r["measured"]["msgs"].as_int(), 0);
  EXPECT_GT(r["measured"]["words"].as_int(), 0);
  EXPECT_GT(r["measured"]["flops"].as_int(), 0);
  ASSERT_TRUE(r["analytic"].is_object());
  EXPECT_GT(r["analytic"]["msgs"].as_number(), 0.0);
  EXPECT_GT(r["analytic"]["words"].as_number(), 0.0);
  EXPECT_GT(r["analytic"]["flops"].as_number(), 0.0);
  EXPECT_GT(r["analytic"]["seconds"].as_number(), 0.0);
  EXPECT_GT(r["modeled_clock_seconds"].as_number(), 0.0);
  EXPECT_GT(r["wall_seconds"].as_number(), 0.0);
}

TEST(ValidationSchemaTest, JsonRoundTripsThroughTheParser) {
  const Machine s2 = stampede2();
  const Json doc =
      validation_to_json(sample_rows(), s2, rt::TransportKind::modeled);
  const std::optional<Json> back = Json::parse(doc.dump(1));
  ASSERT_TRUE(back.has_value());
  // Deterministic serialization: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(back->dump(1), doc.dump(1));
  EXPECT_EQ((*back)["schema"].as_string(), "cacqr.model_validation.v1");
}

}  // namespace
}  // namespace cacqr::model
