/// \file test_validation.cpp
/// \brief Model-vs-execution tie-in: the analytic cost functions must
///        reproduce the counters measured by the instrumented runtime on
///        the real implementation.  This is what licenses evaluating the
///        model at paper scale (where the thread backend cannot go).

#include <gtest/gtest.h>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/chol/cfr3d.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/model/costs.hpp"

namespace cacqr::model {
namespace {

using dist::DistMatrix;

rt::CostCounters measure(int ranks, const std::function<void(rt::Comm&)>& f) {
  return rt::max_counters(rt::Runtime::run(ranks, f));
}

TEST(ValidationTest, CollectivesMatchExactly) {
  // For power-of-two communicators the analytic collective costs equal
  // the measured busiest-rank counters exactly.
  for (const int p : {2, 4, 8}) {
    const i64 n = 512;
    auto c = measure(p, [&](rt::Comm& comm) {
      std::vector<double> v(static_cast<std::size_t>(n));
      comm.bcast(v, 0);
    });
    const Cost mc = cost_bcast(static_cast<double>(n), p);
    EXPECT_EQ(static_cast<double>(c.msgs), mc.alpha) << "p=" << p;
    EXPECT_NEAR(static_cast<double>(c.words), mc.beta, 8.0) << "p=" << p;

    c = measure(p, [&](rt::Comm& comm) {
      std::vector<double> v(static_cast<std::size_t>(n));
      comm.allreduce_sum(v);
    });
    const Cost ma = cost_allreduce(static_cast<double>(n), p);
    EXPECT_EQ(static_cast<double>(c.msgs), ma.alpha) << "p=" << p;
    EXPECT_NEAR(static_cast<double>(c.words), ma.beta, 8.0) << "p=" << p;
  }
}

/// Measures max-over-ranks counter deltas for `body`, excluding setup
/// (grid construction does its own small collectives): every rank
/// contributes its delta through a plain array, no gtest calls off the
/// main thread needed.
template <class Setup, class Body>
rt::CostCounters measure_delta(int ranks, Setup setup, Body body) {
  std::vector<rt::CostCounters> deltas(static_cast<std::size_t>(ranks));
  rt::Runtime::run(ranks, [&](rt::Comm& world) {
    auto ctx = setup(world);
    const auto before = world.counters();
    body(world, ctx);
    deltas[static_cast<std::size_t>(world.rank())] =
        world.counters() - before;
  });
  return rt::max_counters(deltas);
}

TEST(ValidationTest, Mm3dMatchesExactly) {
  // The busiest MM3D rank (row root + column root + allreduce) achieves
  // every per-op maximum simultaneously, so the model is exact.
  const int g = 2;
  const i64 m = 16, k = 8, n = 12;
  auto c = measure_delta(
      g * g * g,
      [&](rt::Comm& world) { return grid::CubeGrid(world, g); },
      [&](rt::Comm&, grid::CubeGrid& cube) {
        auto a =
            DistMatrix::from_global_on_cube(lin::hashed_matrix(1, m, k), cube);
        auto b =
            DistMatrix::from_global_on_cube(lin::hashed_matrix(2, k, n), cube);
        (void)dist::mm3d(a, b, cube);
      });
  const Cost mc = cost_mm3d(m, k, n, g);
  EXPECT_EQ(static_cast<double>(c.msgs), mc.alpha);
  EXPECT_NEAR(static_cast<double>(c.words), mc.beta, 4.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(c.flops), mc.gamma);
}

TEST(ValidationTest, Cfr3dWithinBands) {
  // CFR3D mixes ops whose maxima land on different ranks (transpose
  // diagonal ranks send nothing), so the model upper-bounds the measured
  // critical path; require agreement within [0.6, 1.0] for alpha/beta and
  // [0.75, 1.25] for gamma (sequential-kernel low-order terms).
  const int g = 2;
  for (const i64 n : {i64{16}, i64{32}}) {
    auto c = measure(g * g * g, [&](rt::Comm& world) {
      grid::CubeGrid cube(world, g);
      lin::Matrix tall = lin::hashed_matrix(3, 4 * n, n);
      lin::Matrix spd(n, n);
      lin::gram(1.0, tall, 0.0, spd);
      for (i64 i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
      auto da = DistMatrix::from_global_on_cube(spd, cube);
      const auto before = world.counters();
      (void)chol::cfr3d(da, cube);
      const auto delta = world.counters() - before;
      if (world.rank() == 0) {
        const Cost mc = cost_cfr3d(static_cast<double>(n), g);
        EXPECT_LE(static_cast<double>(delta.msgs), mc.alpha) << "n=" << n;
        EXPECT_GE(static_cast<double>(delta.msgs), 0.5 * mc.alpha);
        EXPECT_LE(static_cast<double>(delta.words), 1.05 * mc.beta);
        EXPECT_GE(static_cast<double>(delta.words), 0.5 * mc.beta);
        EXPECT_NEAR(static_cast<double>(delta.flops) / mc.gamma, 1.0, 0.3);
      }
    });
    (void)c;
  }
}

TEST(ValidationTest, CaCqr2WithinBands) {
  struct Case {
    int c, d;
    i64 m, n;
  };
  for (const auto& tc : {Case{1, 8, 64, 16}, Case{2, 2, 32, 8},
                         Case{2, 4, 64, 16}}) {
    auto measured = measure_delta(
        tc.c * tc.c * tc.d,
        [&](rt::Comm& world) {
          return grid::TunableGrid(world, tc.c, tc.d);
        },
        [&](rt::Comm&, grid::TunableGrid& g) {
          auto da = DistMatrix::from_global_on_tunable(
              lin::hashed_matrix(4, tc.m, tc.n), g);
          (void)core::ca_cqr2(da, g);
        });
    const Cost mc = cost_ca_cqr2(static_cast<double>(tc.m),
                                 static_cast<double>(tc.n), tc.c, tc.d);
    EXPECT_LE(static_cast<double>(measured.msgs), mc.alpha + 1)
        << "c=" << tc.c << " d=" << tc.d;
    EXPECT_GE(static_cast<double>(measured.msgs), 0.45 * mc.alpha);
    EXPECT_LE(static_cast<double>(measured.words), 1.05 * mc.beta + 8);
    EXPECT_GE(static_cast<double>(measured.words), 0.45 * mc.beta);
    EXPECT_NEAR(static_cast<double>(measured.flops) / mc.gamma, 1.0, 0.35)
        << "c=" << tc.c << " d=" << tc.d;
  }
}

TEST(ValidationTest, PgeqrfWithinBandsSingleProcessColumn) {
  // With pc == 1 every rank owns every panel, so per-rank counters see
  // the full serialized critical path the model charges: tight bands.
  const int pr = 4, pc = 1;
  const i64 b = 2, m = 32, n = 8;
  auto measured = measure_delta(
      pr * pc,
      [&](rt::Comm& world) { return baseline::ProcGrid2d(world, pr, pc); },
      [&](rt::Comm&, baseline::ProcGrid2d& g) {
        auto da = baseline::BlockCyclicMatrix::from_global(
            lin::hashed_matrix(5, m, n), b, g);
        (void)baseline::pgeqrf_2d(da, g, {.normalize_signs = false});
      });
  const Cost mc = cost_pgeqrf_2d(static_cast<double>(m),
                                 static_cast<double>(n), pr, pc,
                                 static_cast<double>(b));
  // The model charges the serialized critical path (every broadcast at
  // its root's cost); per-rank maxima sit below it because the panel
  // broadcast roots rotate across panels.
  EXPECT_LE(static_cast<double>(measured.msgs), 1.02 * mc.alpha);
  EXPECT_GE(static_cast<double>(measured.msgs), 0.6 * mc.alpha);
  EXPECT_LE(static_cast<double>(measured.words), 1.05 * mc.beta + 8);
  EXPECT_GE(static_cast<double>(measured.words), 0.5 * mc.beta);
  EXPECT_NEAR(static_cast<double>(measured.flops) / mc.gamma, 1.0, 0.4);
}

TEST(ValidationTest, PgeqrfPerRankUndercountsWithMultipleColumns) {
  // With pc > 1 panel ownership alternates between process columns, so a
  // single rank's counters see only ~1/pc of the panel-phase messages
  // while the model charges the serialized critical path: the model must
  // upper-bound the measurement, within a documented factor.
  const int pr = 2, pc = 2;
  const i64 b = 2, m = 32, n = 8;
  auto measured = measure_delta(
      pr * pc,
      [&](rt::Comm& world) { return baseline::ProcGrid2d(world, pr, pc); },
      [&](rt::Comm&, baseline::ProcGrid2d& g) {
        auto da = baseline::BlockCyclicMatrix::from_global(
            lin::hashed_matrix(5, m, n), b, g);
        (void)baseline::pgeqrf_2d(da, g, {.normalize_signs = false});
      });
  const Cost mc = cost_pgeqrf_2d(static_cast<double>(m),
                                 static_cast<double>(n), pr, pc,
                                 static_cast<double>(b));
  EXPECT_LE(static_cast<double>(measured.msgs), mc.alpha + 1);
  EXPECT_GE(static_cast<double>(measured.msgs), 0.4 * mc.alpha);
  EXPECT_LE(static_cast<double>(measured.words), 1.1 * mc.beta + 8);
  EXPECT_NEAR(static_cast<double>(measured.flops) / mc.gamma, 1.0, 0.5);
}

TEST(ValidationTest, TsqrWithinBands) {
  const int p = 8;
  const i64 m = 8 * 8 * 4, n = 4;
  auto measured = measure(p, [&](rt::Comm& world) {
    auto da = DistMatrix::from_global(lin::hashed_matrix(6, m, n), p, 1,
                                      world.rank(), 0);
    (void)baseline::tsqr(da, world);
  });
  const Cost mc = cost_tsqr(static_cast<double>(m), static_cast<double>(n),
                            p);
  EXPECT_NEAR(static_cast<double>(measured.msgs) / mc.alpha, 1.0, 0.5);
  EXPECT_NEAR(static_cast<double>(measured.words) / mc.beta, 1.0, 0.5);
  EXPECT_NEAR(static_cast<double>(measured.flops) / mc.gamma, 1.0, 0.5);
}

TEST(ValidationTest, ModeledTimeTracksAnalyticTime) {
  // Run CA-CQR2 under Stampede2 parameters: the runtime's LogP clock and
  // the analytic sum must agree within a factor band (the clock sees real
  // schedule overlap; the analytic model serializes per-op maxima).
  const Machine s2 = stampede2();
  const int c = 2, d = 4;
  const i64 m = 64, n = 16;
  auto per_rank = rt::Runtime::run(
      c * c * d,
      [&](rt::Comm& world) {
        grid::TunableGrid g(world, c, d);
        auto da = DistMatrix::from_global_on_tunable(
            lin::hashed_matrix(7, m, n), g);
        (void)core::ca_cqr2(da, g);
      },
      s2.rt_params());
  const double simulated = rt::modeled_time(per_rank);
  const double analytic =
      cost_ca_cqr2(static_cast<double>(m), static_cast<double>(n), c, d)
          .time(s2);
  EXPECT_GT(simulated, 0.3 * analytic);
  EXPECT_LT(simulated, 1.2 * analytic);
}

}  // namespace
}  // namespace cacqr::model
