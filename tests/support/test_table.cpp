#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cacqr/support/cli.hpp"
#include "cacqr/support/table.hpp"

namespace cacqr {
namespace {

TEST(TableTest, AlignedRender) {
  TextTable t;
  t.header({"nodes", "gflops"});
  t.row({"64", "123.4"});
  t.row({"1024", "7.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("nodes"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  // Header line must be at least as wide as the widest cell.
  std::istringstream is(s);
  std::string line1, rule;
  std::getline(is, line1);
  std::getline(is, rule);
  EXPECT_GE(rule.size(), std::string("nodes  gflops").size());
}

TEST(TableTest, CsvRoundTrip) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"1", "2"});
  t.row({"3", "4"});
  const std::string path = testing::TempDir() + "cacqr_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,2");
  EXPECT_EQ(l3, "3,4");
  std::remove(path.c_str());
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.5), "1.5");
  EXPECT_EQ(TextTable::num(2.0), "2");
  EXPECT_EQ(TextTable::num(0.333333333, 3), "0.333");
}

TEST(CliTest, ParsesFlags) {
  const char* argv[] = {"prog", "--nodes=64", "--verbose", "positional",
                        "--ratio=1.5"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.has("nodes"));
  EXPECT_EQ(args.get_int("nodes", 0), 64);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 1.5);
  EXPECT_FALSE(args.has("positional"));
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_EQ(args.get("absent", "x"), "x");
}

}  // namespace
}  // namespace cacqr
