#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cacqr/support/json.hpp"

namespace cacqr::support {
namespace {

TEST(JsonTest, BuildsAndAccesses) {
  Json j = Json::object();
  j.set("name", "cacqr");
  j.set("count", 3);
  j.set("pi", 3.5);
  j.set("flag", true);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  j.set("list", std::move(arr));

  EXPECT_EQ(j["name"].as_string(), "cacqr");
  EXPECT_EQ(j["count"].as_int(), 3);
  EXPECT_DOUBLE_EQ(j["pi"].as_number(), 3.5);
  EXPECT_TRUE(j["flag"].as_bool());
  EXPECT_EQ(j["list"].size(), 2u);
  EXPECT_EQ(j["list"].at(1).as_string(), "two");
  EXPECT_TRUE(j["absent"].is_null());
  EXPECT_EQ(j["absent"].as_int(-7), -7);
  EXPECT_TRUE(j.has("flag"));
  EXPECT_FALSE(j.has("absent"));
}

TEST(JsonTest, RoundTripsThroughText) {
  Json j = Json::object();
  j.set("neg", -1.25e-3);
  j.set("big", 9007199254740992.0);  // 2^53
  j.set("text", "line\nbreak \"quoted\" \\slash");
  j.set("null", Json());
  Json nested = Json::object();
  nested.set("inner", Json::array());
  j.set("obj", std::move(nested));

  for (const int indent : {-1, 0, 2}) {
    const std::string text = j.dump(indent);
    auto back = Json::parse(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(back->dump(indent), text);
    EXPECT_DOUBLE_EQ((*back)["neg"].as_number(), -1.25e-3);
    EXPECT_DOUBLE_EQ((*back)["big"].as_number(), 9007199254740992.0);
    EXPECT_EQ((*back)["text"].as_string(), "line\nbreak \"quoted\" \\slash");
    EXPECT_TRUE((*back)["null"].is_null());
    EXPECT_EQ((*back)["obj"]["inner"].size(), 0u);
  }
}

TEST(JsonTest, DeterministicSerialization) {
  Json a = Json::object();
  a.set("z", 1.0 / 3.0);
  a.set("a", 0.1);
  Json b = Json::object();
  b.set("z", 1.0 / 3.0);
  b.set("a", 0.1);
  EXPECT_EQ(a.dump(1), b.dump(1));
  // Round-trip preserves the exact double bits (shortest-round-trip).
  auto back = Json::parse(a.dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)["z"].as_number(), 1.0 / 3.0);
  EXPECT_EQ((*back)["a"].as_number(), 0.1);
}

TEST(JsonTest, AsIntRangeChecksCorruptValues) {
  // A corrupted file can hold any finite double where an integer is
  // expected; out-of-range values must read as the fallback, never as
  // an undefined float-to-int cast.
  EXPECT_EQ(Json(1e300).as_int(-1), -1);
  EXPECT_EQ(Json(-1e300).as_int(-1), -1);
  EXPECT_EQ(Json(42.0).as_int(-1), 42);
  EXPECT_EQ(Json("42").as_int(-1), -1);
}

TEST(JsonTest, ParsesStandardForms) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2")->as_number(), -250.0);
  EXPECT_EQ(Json::parse("\"a\\u0041b\"")->as_string(), "aAb");
  EXPECT_EQ(Json::parse("[1, 2, 3]")->size(), 3u);
  EXPECT_EQ(Json::parse("{\"k\": [true]}").value()["k"].at(0).as_bool(),
            true);
  EXPECT_EQ(Json::parse(" { } ")->size(), 0u);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "{a: 1}",
        "\"unterminated", "tru", "nul", "1.2.3", "--1", "1e", "[1] trailing",
        "\"bad\\x\"", "\"\\u12g4\"", "{\"a\":1,}", "[,]", "\x01"}) {
    EXPECT_FALSE(Json::parse(bad).has_value()) << bad;
  }
  // Depth bomb: deeply nested arrays are rejected, not stack-overflowed.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Json::parse(deep).has_value());
}

TEST(JsonTest, FileRoundTripAndMissingFile) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cacqr_json_test").string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/roundtrip.json";

  Json j = Json::object();
  j.set("v", 42);
  ASSERT_TRUE(write_json_file(path, j));
  auto back = read_json_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ((*back)["v"].as_int(), 42);

  EXPECT_FALSE(read_json_file(dir + "/nope.json").has_value());

  // Corrupted file reads as absent, not as an error.
  std::ofstream(path, std::ios::trunc) << "{\"v\": 42";
  EXPECT_FALSE(read_json_file(path).has_value());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cacqr::support
