#include <gtest/gtest.h>

#include <cmath>

#include "cacqr/support/rng.hpp"

namespace cacqr {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BelowBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

}  // namespace
}  // namespace cacqr
