#include <gtest/gtest.h>

#include "cacqr/support/error.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr {
namespace {

TEST(MathTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(MathTest, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1 << 20), 20);
}

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
}

TEST(MathTest, CeilDivRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(0, 4), 0);
}

TEST(MathTest, ExactCbrt) {
  EXPECT_EQ(exact_cbrt(1), 1);
  EXPECT_EQ(exact_cbrt(8), 2);
  EXPECT_EQ(exact_cbrt(27), 3);
  EXPECT_EQ(exact_cbrt(64 * 64 * 64), 64);
  EXPECT_THROW((void)exact_cbrt(9), DimensionError);
}

TEST(MathTest, CheckedMul) {
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20), i64{1} << 40);
  EXPECT_THROW((void)checked_mul(i64{1} << 40, i64{1} << 40), Error);
  EXPECT_THROW((void)checked_mul(-1, 2), Error);
}

TEST(MathTest, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 3), 27);
  EXPECT_EQ(ipow(7, 0), 1);
}

TEST(ErrorTest, EnsureThrowsWithMessage) {
  EXPECT_NO_THROW(ensure(true, "fine"));
  try {
    ensure<DimensionError>(false, "bad dims: ", 3, " vs ", 4);
    FAIL() << "expected throw";
  } catch (const DimensionError& e) {
    EXPECT_STREQ(e.what(), "bad dims: 3 vs 4");
  }
}

TEST(ErrorTest, NotSpdCarriesPivot) {
  try {
    throw NotSpdError("pivot failed", 7);
  } catch (const NotSpdError& e) {
    EXPECT_EQ(e.pivot, 7u);
  }
}

}  // namespace
}  // namespace cacqr
