/// \file cacqr_gtest_main.cpp
/// \brief Shared gtest entry point for every suite.  Beyond what
///        GTest::gtest_main does, it installs the runtime's child
///        failure probe: under the multi-process transports
///        (CACQR_TRANSPORT=shm, or per-run TransportKind overrides) a
///        rank body executes in a fork()ed child, whose EXPECT/ASSERT
///        failures live in the child's copy of the framework and would
///        otherwise evaporate.  The probe lets the runtime detect that
///        the failure count grew across a rank body and report the rank
///        failed to the parent, which fails the test for real.

#include <gtest/gtest.h>

#include "cacqr/rt/comm.hpp"

namespace {

/// Failed assertion parts recorded so far in the currently running test
/// (0 outside a test).  Monotonic within one test body, which is all the
/// runtime compares across a forked rank body.
int failed_parts_so_far() {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr || info->result() == nullptr) return 0;
  const testing::TestResult& result = *info->result();
  int failed = 0;
  for (int i = 0; i < result.total_part_count(); ++i) {
    if (result.GetTestPartResult(i).failed()) ++failed;
  }
  return failed;
}

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  cacqr::rt::set_child_failure_probe(&failed_parts_so_far);
  return RUN_ALL_TESTS();
}
