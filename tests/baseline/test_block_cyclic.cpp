#include <gtest/gtest.h>

#include "cacqr/baseline/block_cyclic.hpp"
#include "cacqr/lin/generate.hpp"

namespace cacqr::baseline {
namespace {

TEST(ProcGrid2dTest, CoordinatesAndComms) {
  rt::Runtime::run(6, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 3);
    EXPECT_EQ(g.myrow(), world.rank() / 3);
    EXPECT_EQ(g.mycol(), world.rank() % 3);
    EXPECT_EQ(g.row_comm().size(), 3);
    EXPECT_EQ(g.col_comm().size(), 2);
    EXPECT_EQ(g.row_comm().rank(), g.mycol());
    EXPECT_EQ(g.col_comm().rank(), g.myrow());
  });
}

TEST(ProcGrid2dTest, RejectsWrongSize) {
  rt::Runtime::run(5, [](rt::Comm& world) {
    EXPECT_THROW(ProcGrid2d(world, 2, 3), DimensionError);
  });
}

TEST(BlockCyclicTest, IndexMapsRoundTrip) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    // 8x8, block 2: blocks (I, J) on process (I%2, J%2).
    lin::Matrix a(8, 8);
    for (i64 j = 0; j < 8; ++j) {
      for (i64 i = 0; i < 8; ++i) a(i, j) = static_cast<double>(10 * i + j);
    }
    auto d = BlockCyclicMatrix::from_global(a, 2, g);
    EXPECT_EQ(d.local().rows(), 4);
    EXPECT_EQ(d.local().cols(), 4);
    for (i64 lj = 0; lj < 4; ++lj) {
      for (i64 li = 0; li < 4; ++li) {
        EXPECT_EQ(d.local()(li, lj), a(d.global_row(li), d.global_col(lj)));
      }
    }
  });
}

TEST(BlockCyclicTest, GatherRoundTrip) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    lin::Matrix a = lin::hashed_matrix(91, 16, 8);
    auto d = BlockCyclicMatrix::from_global(a, 2, g);
    EXPECT_EQ(d.gather(g), a);
  });
}

TEST(BlockCyclicTest, RowCutContiguity) {
  // For every (k, j) the set {local rows with global index >= k*b+j} must
  // be exactly [local_row_cut(k, j), local_rows).
  rt::Runtime::run(6, [](rt::Comm& world) {
    ProcGrid2d g(world, 3, 2);
    BlockCyclicMatrix d(18, 4, 2, g);  // 9 row blocks over 3 process rows
    for (i64 k = 0; k < 9; ++k) {
      for (i64 j = 0; j < 2; ++j) {
        const i64 cut = d.local_row_cut(k, j);
        const i64 g0 = k * 2 + j;
        for (i64 li = 0; li < d.local().rows(); ++li) {
          EXPECT_EQ(d.global_row(li) >= g0, li >= cut)
              << "k=" << k << " j=" << j << " li=" << li << " rank "
              << world.rank();
        }
      }
    }
  });
}

TEST(BlockCyclicTest, ColCutContiguity) {
  rt::Runtime::run(6, [](rt::Comm& world) {
    ProcGrid2d g(world, 3, 2);
    BlockCyclicMatrix d(6, 12, 2, g);
    for (i64 k = 0; k <= 6; ++k) {
      const i64 cut = d.local_col_cut(k);
      for (i64 lj = 0; lj < d.local().cols(); ++lj) {
        EXPECT_EQ(d.global_col(lj) >= k * 2, lj >= cut) << "k=" << k;
      }
    }
  });
}

TEST(BlockCyclicTest, IdentityHasUnitDiagonal) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    auto d = BlockCyclicMatrix::identity(8, 4, 2, g);
    lin::Matrix full = d.gather(g);
    for (i64 j = 0; j < 4; ++j) {
      for (i64 i = 0; i < 8; ++i) {
        EXPECT_EQ(full(i, j), i == j ? 1.0 : 0.0);
      }
    }
  });
}

TEST(BlockCyclicTest, DivisibilityEnforced) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    EXPECT_THROW(BlockCyclicMatrix(10, 8, 2, g), DimensionError);
    EXPECT_THROW(BlockCyclicMatrix(8, 6, 2, g), DimensionError);
  });
}

}  // namespace
}  // namespace cacqr::baseline
