#include <gtest/gtest.h>

#include <tuple>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr::baseline {
namespace {

using Param = std::tuple<int, int, int, int, int>;  // pr, pc, b, mB, nB

class PgeqrfSweep : public ::testing::TestWithParam<Param> {};

/// m = mB * b * pr rows and n = nB * b * pc columns (full block cycles).
TEST_P(PgeqrfSweep, MatchesSequentialHouseholder) {
  const auto [pr, pc, b, mB, nB] = GetParam();
  const i64 m = static_cast<i64>(mB) * b * pr;
  const i64 n = static_cast<i64>(nB) * b * pc;
  ASSERT_GE(m, n);
  rt::Runtime::run(pr * pc, [&, pr = pr, pc = pc, b = b](rt::Comm& world) {
    ProcGrid2d g(world, pr, pc);
    lin::Matrix a = lin::hashed_matrix(93, m, n);
    auto da = BlockCyclicMatrix::from_global(a, b, g);

    auto res = pgeqrf_2d(da, g);

    auto hh = lin::householder_qr(a);
    lin::Matrix qg = res.q.gather(g);
    lin::Matrix rg = res.r.gather(g);
    EXPECT_LT(lin::max_abs_diff(rg, hh.r), 1e-10 * (1.0 + lin::max_abs(hh.r)))
        << "pr=" << pr << " pc=" << pc << " b=" << b << " " << m << "x" << n;
    EXPECT_LT(lin::max_abs_diff(qg, hh.q), 1e-10)
        << "pr=" << pr << " pc=" << pc << " b=" << b << " " << m << "x" << n;
  });
}

INSTANTIATE_TEST_SUITE_P(
    GridsBlocksShapes, PgeqrfSweep,
    ::testing::Values(Param{1, 1, 4, 3, 2},   // sequential degenerate
                      Param{2, 1, 2, 4, 2},   // column of processes
                      Param{1, 2, 2, 4, 2},   // row of processes
                      Param{2, 2, 2, 3, 2},   // square grid
                      Param{4, 2, 2, 2, 2},   // tall grid
                      Param{2, 4, 2, 4, 1},   // wide grid
                      Param{2, 2, 4, 2, 2},   // bigger blocks
                      Param{4, 4, 2, 2, 1},   // 16 ranks
                      Param{2, 2, 2, 2, 2}));

TEST(PgeqrfTest, SquareMatrix) {
  // m == n exercises the empty-trailing-update and empty-V-suffix paths.
  rt::Runtime::run(4, [](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    lin::Matrix a = lin::hashed_matrix(94, 8, 8);
    auto da = BlockCyclicMatrix::from_global(a, 2, g);
    auto res = pgeqrf_2d(da, g);
    auto hh = lin::householder_qr(a);
    EXPECT_LT(lin::max_abs_diff(res.r.gather(g), hh.r),
              1e-10 * (1.0 + lin::max_abs(hh.r)));
    EXPECT_LT(lin::max_abs_diff(res.q.gather(g), hh.q), 1e-10);
  });
}

TEST(PgeqrfTest, OrthogonalityAndResidual) {
  rt::Runtime::run(8, [](rt::Comm& world) {
    ProcGrid2d g(world, 4, 2);
    lin::Matrix a = lin::hashed_matrix(95, 32, 8);
    auto da = BlockCyclicMatrix::from_global(a, 2, g);
    auto res = pgeqrf_2d(da, g);
    lin::Matrix qg = res.q.gather(g);
    lin::Matrix rg = res.r.gather(g);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-12);
    EXPECT_LT(lin::residual_error(a, qg, rg), 1e-13);
    EXPECT_TRUE(lin::is_upper_triangular(rg));
    for (i64 i = 0; i < 8; ++i) EXPECT_GE(rg(i, i), 0.0);
  });
}

TEST(PgeqrfTest, IllConditionedStillStable) {
  // Householder QR is unconditionally stable -- the property CholeskyQR2
  // lacks and the reason it is the reference baseline.
  Rng rng(96);
  lin::Matrix a = lin::with_cond(rng, 32, 8, 1e12);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    auto da = BlockCyclicMatrix::from_global(a, 2, g);
    auto res = pgeqrf_2d(da, g);
    lin::Matrix qg = res.q.gather(g);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-12);
    EXPECT_LT(lin::residual_error(a, qg, res.r.gather(g)), 1e-12);
  });
}

TEST(PgeqrfCostTest, AlphaScalesWithColumnCount) {
  // ScaLAPACK QR's latency handicap: alpha ~ 4 n log(pr) from per-column
  // allreduces.  Doubling n must roughly double the message count --
  // unlike CholeskyQR2, whose alpha is independent of n.
  auto msgs_for = [&](i64 n) {
    auto per_rank = rt::Runtime::run(4, [&](rt::Comm& world) {
      ProcGrid2d g(world, 4, 1);
      lin::Matrix a = lin::hashed_matrix(97, 16 * n, n);
      auto da = BlockCyclicMatrix::from_global(a, 2, g);
      (void)pgeqrf_2d(da, g, {.normalize_signs = false});
    });
    return rt::max_counters(per_rank).msgs;
  };
  const i64 m8 = msgs_for(8);
  const i64 m16 = msgs_for(16);
  EXPECT_GT(m16, static_cast<i64>(1.7 * static_cast<double>(m8)));
  EXPECT_LT(m16, static_cast<i64>(2.5 * static_cast<double>(m8)));
}

TEST(PgeqrfCostTest, FlopsNearHouseholderFormula) {
  // 2mn^2 - (2/3)n^3 total across ranks.
  const i64 m = 64, n = 16, b = 2;
  auto per_rank = rt::Runtime::run(4, [&](rt::Comm& world) {
    ProcGrid2d g(world, 2, 2);
    lin::Matrix a = lin::hashed_matrix(98, m, n);
    auto da = BlockCyclicMatrix::from_global(a, b, g);
    auto res = pgeqrf_2d(da, g, {.normalize_signs = false});
    (void)res;
  });
  double total = 0;
  for (const auto& c : per_rank) total += static_cast<double>(c.flops);
  const double hh = 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
  // Factorization + T forms + explicit Q formation: a small multiple of
  // the geqrf count; insist on the right order of magnitude.
  EXPECT_GT(total, hh);
  EXPECT_LT(total, 6.0 * hh);
}

}  // namespace
}  // namespace cacqr::baseline
