#include <gtest/gtest.h>

#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/math.hpp"

namespace cacqr::baseline {
namespace {

using dist::DistMatrix;

class TsqrSweep : public ::testing::TestWithParam<int> {};

TEST_P(TsqrSweep, MatchesSequentialHouseholder) {
  const int p = GetParam();
  const i64 n = 6;
  const i64 m = 8 * n * p;
  rt::Runtime::run(p, [&](rt::Comm& world) {
    lin::Matrix a = lin::hashed_matrix(101, m, n);
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto res = tsqr(da, world);
    auto hh = lin::householder_qr(a);
    EXPECT_LT(lin::max_abs_diff(res.r, hh.r),
              1e-10 * (1.0 + lin::max_abs(hh.r)))
        << "p=" << p;
    lin::Matrix qg = gather(res.q, world);
    EXPECT_LT(lin::max_abs_diff(qg, hh.q), 1e-10) << "p=" << p;
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, TsqrSweep, ::testing::Values(1, 2, 4, 8));

TEST(TsqrTest, InvariantsOnIllConditioned) {
  // TSQR is unconditionally stable, unlike CholeskyQR2.
  Rng rng(102);
  const int p = 4;
  lin::Matrix a = lin::with_cond(rng, 64, 8, 1e12);
  rt::Runtime::run(p, [&](rt::Comm& world) {
    auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
    auto res = tsqr(da, world);
    lin::Matrix qg = gather(res.q, world);
    EXPECT_LT(lin::orthogonality_error(qg), 1e-12);
    EXPECT_LT(lin::residual_error(a, qg, res.r), 1e-12);
  });
}

TEST(TsqrTest, RejectsNonPow2) {
  rt::Runtime::run(3, [](rt::Comm& world) {
    DistMatrix a(12, 2, 3, 1, world.rank(), 0);
    EXPECT_THROW((void)tsqr(a, world), DimensionError);
  });
}

TEST(TsqrTest, RejectsShortBlocks) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    DistMatrix a(8, 4, 4, 1, world.rank(), 0);  // m/P = 2 < n = 4
    EXPECT_THROW((void)tsqr(a, world), DimensionError);
  });
}

TEST(TsqrCostTest, LogarithmicMessageCount) {
  // TSQR's up+down sweeps: O(log P) messages, independent of m.
  const i64 n = 4;
  auto msgs_for = [&](int p, i64 m) {
    auto per_rank = rt::Runtime::run(p, [&](rt::Comm& world) {
      lin::Matrix a = lin::hashed_matrix(103, m, n);
      auto da = DistMatrix::from_global(a, p, 1, world.rank(), 0);
      (void)tsqr(da, world);
    });
    return rt::max_counters(per_rank).msgs;
  };
  const i64 at8 = msgs_for(8, 8 * 8 * n);
  const i64 at8_tall = msgs_for(8, 32 * 8 * n);
  EXPECT_EQ(at8, at8_tall);  // independent of m
  // Root (rank 0) does one recv+send... critical path ~ 2 log P + bcast.
  EXPECT_LE(at8, 2 * 3 + 2 * ceil_log2(8) + 2);
}

TEST(TsqrCostTest, BetaScalesWithN2LogP) {
  // Tree messages carry n^2-size payloads: beta ~ n^2 log P, the gap to
  // CholeskyQR2's single n^2 allreduce.
  auto words_for = [&](i64 n) {
    auto per_rank = rt::Runtime::run(8, [&](rt::Comm& world) {
      lin::Matrix a = lin::hashed_matrix(104, 64 * n, n);
      auto da = DistMatrix::from_global(a, 8, 1, world.rank(), 0);
      (void)tsqr(da, world);
    });
    return rt::max_counters(per_rank).words;
  };
  const i64 w4 = words_for(4);
  const i64 w8 = words_for(8);
  // Quadrupling expected when n doubles.
  EXPECT_GT(w8, 3 * w4);
  EXPECT_LT(w8, 6 * w4);
}

}  // namespace
}  // namespace cacqr::baseline
