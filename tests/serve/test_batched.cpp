/// \file test_batched.cpp
/// \brief The stacked CQR2 sweep (core/batched.hpp): every panel of a
///        micro-batch comes out byte-identical to the same panel run as a
///        batch of one -- across thread budgets, overlap settings, and
///        precision modes -- and a breakdown panel is isolated from its
///        batch mates whether auto_shift retries it or its error rides
///        its own item.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "cacqr/core/batched.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/parallel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::core {
namespace {

namespace parallel = lin::parallel;

struct BudgetGuard {
  int saved = parallel::thread_budget();
  ~BudgetGuard() { parallel::set_thread_budget(saved); }
};

struct OverlapGuard {
  bool saved = rt::overlap_enabled();
  ~OverlapGuard() { rt::set_overlap_enabled(saved); }
};

/// The same panel as a batch of one: the standalone reference (the 1D
/// driver itself delegates here, so this IS the standalone result).
BatchedItem solo(lin::ConstMatrixView panel, const rt::Comm& world,
                 const BatchedOptions& opts) {
  const lin::ConstMatrixView panels[1] = {panel};
  std::vector<BatchedItem> items = factorize_batched(panels, world, opts);
  return std::move(items.front());
}

TEST(BatchedTest, StackedSweepBitwiseAcrossBudgetsOverlapAndPrecision) {
  // The tentpole contract: N stacked panels -- different row counts, even
  // different column counts -- factor byte-identically to N standalone
  // sweeps, because the fused Allreduce pairs ranks, not elements.  Swept
  // over the axes that could plausibly perturb bits.
  const BudgetGuard budget_guard;
  const OverlapGuard overlap_guard;
  for (const int budget : {1, 4}) {
    for (const bool overlap : {false, true}) {
      for (const Precision precision : {Precision::fp64, Precision::mixed}) {
        parallel::set_thread_budget(budget);
        rt::set_overlap_enabled(overlap);
        const std::string cfg = "budget=" + std::to_string(budget) +
                                " overlap=" + std::to_string(overlap) +
                                " precision=" +
                                std::string(precision_name(precision));
        rt::Runtime::run(4, [&](rt::Comm& world) {
          const lin::Matrix a0 = lin::hashed_matrix(201, 96, 8);
          const lin::Matrix a1 = lin::hashed_matrix(202, 120, 8);
          const lin::Matrix a2 = lin::hashed_matrix(203, 80, 12);
          const lin::Matrix a3 = lin::hashed_matrix(204, 96, 8);
          const lin::ConstMatrixView panels[4] = {a0, a1, a2, a3};
          const BatchedOptions opts{.precision = precision};
          const std::vector<BatchedItem> batch =
              factorize_batched(panels, world, opts);
          ASSERT_EQ(batch.size(), 4u);
          for (int i = 0; i < 4; ++i) {
            const BatchedItem ref = solo(panels[i], world, opts);
            EXPECT_TRUE(batch[i].ok);
            EXPECT_EQ(batch[i].used_shift, ref.used_shift) << cfg;
            EXPECT_EQ(lin::max_abs_diff(batch[i].q, ref.q), 0.0)
                << cfg << " panel " << i;
            EXPECT_EQ(lin::max_abs_diff(batch[i].r, ref.r), 0.0)
                << cfg << " panel " << i;
          }
        });
      }
    }
  }
}

TEST(BatchedTest, Fp32LaneBatchesBitwiseToo) {
  // The fp32 Gram slab carries MatrixF wire words at per-panel offsets;
  // one f32 Allreduce must still be offset-invisible.
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a0 = lin::hashed_matrix(205, 128, 8);
    const lin::Matrix a1 = lin::hashed_matrix(206, 96, 12);
    const lin::Matrix a2 = lin::hashed_matrix(207, 128, 8);
    const lin::ConstMatrixView panels[3] = {a0, a1, a2};
    const BatchedOptions opts{.precision = Precision::fp32};
    const std::vector<BatchedItem> batch =
        factorize_batched(panels, world, opts);
    for (int i = 0; i < 3; ++i) {
      const BatchedItem ref = solo(panels[i], world, opts);
      EXPECT_TRUE(batch[i].ok);
      EXPECT_EQ(lin::max_abs_diff(batch[i].q, ref.q), 0.0) << "panel " << i;
      EXPECT_EQ(lin::max_abs_diff(batch[i].r, ref.r), 0.0) << "panel " << i;
    }
  });
}

TEST(BatchedTest, BreakdownPanelRetriesShiftedWithoutDisturbingMates) {
  Rng rng(208);
  const lin::Matrix bad = lin::with_cond(rng, 64, 8, 1e11);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::Matrix g0 = lin::hashed_matrix(209, 64, 8);
    const lin::Matrix g1 = lin::hashed_matrix(210, 72, 8);
    const lin::ConstMatrixView panels[3] = {g0, bad, g1};
    const std::vector<BatchedItem> batch =
        factorize_batched(panels, world, {});
    EXPECT_TRUE(batch[1].ok);
    EXPECT_TRUE(batch[1].used_shift);
    EXPECT_LT(lin::orthogonality_error(batch[1].q), 1e-10);
    EXPECT_LT(lin::residual_error(bad, batch[1].q, batch[1].r), 1e-9);
    for (const int i : {0, 2}) {
      const BatchedItem ref = solo(panels[i], world, {});
      EXPECT_TRUE(batch[i].ok);
      EXPECT_FALSE(batch[i].used_shift);
      EXPECT_EQ(lin::max_abs_diff(batch[i].q, ref.q), 0.0) << "panel " << i;
      EXPECT_EQ(lin::max_abs_diff(batch[i].r, ref.r), 0.0) << "panel " << i;
    }
  });
}

TEST(BatchedTest, BreakdownWithoutAutoShiftRidesItsOwnItem) {
  Rng rng(211);
  const lin::Matrix bad = lin::with_cond(rng, 64, 8, 1e11);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::Matrix g0 = lin::hashed_matrix(212, 64, 8);
    const lin::Matrix g1 = lin::hashed_matrix(213, 96, 8);
    const lin::ConstMatrixView panels[3] = {g0, bad, g1};
    const BatchedOptions opts{.auto_shift = false};
    const std::vector<BatchedItem> batch =
        factorize_batched(panels, world, opts);
    EXPECT_FALSE(batch[1].ok);
    ASSERT_TRUE(batch[1].error != nullptr);
    EXPECT_THROW(std::rethrow_exception(batch[1].error), NotSpdError);
    for (const int i : {0, 2}) {
      const BatchedItem ref = solo(panels[i], world, opts);
      EXPECT_TRUE(batch[i].ok);
      EXPECT_EQ(lin::max_abs_diff(batch[i].q, ref.q), 0.0) << "panel " << i;
      EXPECT_EQ(lin::max_abs_diff(batch[i].r, ref.r), 0.0) << "panel " << i;
    }
  });
}

TEST(BatchedTest, ThreePassBatchMatchesStandaloneShiftedRuns) {
  rt::Runtime::run(4, [](rt::Comm& world) {
    const lin::Matrix a0 = lin::hashed_matrix(214, 40, 8);
    const lin::Matrix a1 = lin::hashed_matrix(215, 56, 8);
    const lin::ConstMatrixView panels[2] = {a0, a1};
    const BatchedOptions opts{.passes = 3};
    const std::vector<BatchedItem> batch =
        factorize_batched(panels, world, opts);
    for (int i = 0; i < 2; ++i) {
      const BatchedItem ref = solo(panels[i], world, opts);
      EXPECT_TRUE(batch[i].used_shift);
      EXPECT_EQ(lin::max_abs_diff(batch[i].q, ref.q), 0.0) << "panel " << i;
      EXPECT_EQ(lin::max_abs_diff(batch[i].r, ref.r), 0.0) << "panel " << i;
    }
  });
}

TEST(BatchedTest, EmptyBatchAndBadPanelsValidate) {
  rt::Runtime::run(2, [](rt::Comm& world) {
    EXPECT_TRUE(factorize_batched({}, world).empty());
    const lin::Matrix wide(4, 8);
    const lin::ConstMatrixView panels[1] = {wide};
    EXPECT_THROW((void)factorize_batched(panels, world), DimensionError);
  });
}

}  // namespace
}  // namespace cacqr::core
