/// \file test_service.cpp
/// \brief FactorizeService contracts: results through the service are
///        bitwise identical to standalone runs, compatible small panels
///        micro-batch, admission past queue_depth rejects deterministically,
///        a failing job never poisons its neighbors, priority/FIFO order is
///        observable, packing arenas stop growing after warmup, and
///        shutdown drains every admitted job.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "cacqr/core/batched.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"
#include "cacqr/lin/util.hpp"
#include "cacqr/serve/service.hpp"
#include "cacqr/support/error.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::serve {
namespace {

struct Ref {
  lin::Matrix q;
  lin::Matrix r;
};

/// Standalone reference factors: a batch of one on a fresh world of the
/// same width the services below use.  Computed before a service exists
/// so the two runtimes never overlap.
Ref standalone(const lin::Matrix& a, core::BatchedOptions opts = {}) {
  Ref ref;
  rt::Runtime::run(4, [&](rt::Comm& world) {
    const lin::ConstMatrixView panels[1] = {a};
    std::vector<core::BatchedItem> items =
        core::factorize_batched(panels, world, opts);
    if (world.rank() == 0) {
      ref.q = std::move(items.front().q);
      ref.r = std::move(items.front().r);
    }
  });
  return ref;
}

/// Spins until the job leaves the admission queue (the scheduler stamped
/// it running, so the engine is busy inside that round and cannot pop
/// anything we enqueue until the round ends).
void wait_running(const JobHandle& h) {
  while (h.status() == JobStatus::queued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// A job big enough to keep the engine inside its round for the few
/// microseconds the tests need to stage the admission queue behind it.
lin::Matrix blocker_panel() { return lin::hashed_matrix(300, 2048, 96); }

TEST(ServiceTest, JobsComeBackBitwiseIdenticalToStandalone) {
  const lin::Matrix a0 = lin::hashed_matrix(301, 96, 8);
  const lin::Matrix a1 = lin::hashed_matrix(302, 160, 16);
  const Ref r0 = standalone(a0);
  const Ref r1 = standalone(a1);

  FactorizeService svc({.ranks = 4});
  const JobHandle h0 = svc.submit(a0);
  const JobHandle h1 = svc.submit(a1);
  EXPECT_EQ(h0.wait(), JobStatus::done);
  EXPECT_EQ(h1.wait(), JobStatus::done);
  EXPECT_EQ(h0.result().algo, "cqr_1d");
  EXPECT_FALSE(h0.result().used_shift);
  EXPECT_GE(h0.result().exec_seconds, 0.0);
  EXPECT_EQ(lin::max_abs_diff(h0.result().q, r0.q), 0.0);
  EXPECT_EQ(lin::max_abs_diff(h0.result().r, r0.r), 0.0);
  EXPECT_EQ(lin::max_abs_diff(h1.result().q, r1.q), 0.0);
  EXPECT_EQ(lin::max_abs_diff(h1.result().r, r1.r), 0.0);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(ServiceTest, IneligibleShapesRunTheOrdinaryDriver) {
  // cols past batch_max_n: the ordinary factorize driver (heuristic CA
  // grid), never the batched lane.
  const lin::Matrix a = lin::hashed_matrix(303, 256, 80);
  FactorizeService svc({.ranks = 4});
  const JobHandle h = svc.submit(a);
  EXPECT_EQ(h.wait(), JobStatus::done);
  EXPECT_FALSE(h.result().batched);
  EXPECT_EQ(h.result().batch_size, 1u);
  EXPECT_EQ(h.result().algo, "ca_cqr");
  EXPECT_LT(lin::orthogonality_error(h.result().q), 1e-12);
  EXPECT_LT(lin::residual_error(a, h.result().q, h.result().r), 1e-12);
}

TEST(ServiceTest, CompatibleJobsMicroBatchAndStayBitwise) {
  const lin::Matrix a0 = lin::hashed_matrix(304, 96, 8);
  const lin::Matrix a1 = lin::hashed_matrix(305, 96, 8);
  const lin::Matrix a2 = lin::hashed_matrix(306, 96, 8);
  const Ref refs[3] = {standalone(a0), standalone(a1), standalone(a2)};

  FactorizeService svc({.ranks = 4, .queue_depth = 16, .batch_window = 8});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  const JobHandle jobs[3] = {svc.submit(a0), svc.submit(a1), svc.submit(a2)};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(jobs[i].wait(), JobStatus::done);
    EXPECT_TRUE(jobs[i].result().batched) << "job " << i;
    EXPECT_EQ(jobs[i].result().batch_size, 3u) << "job " << i;
    EXPECT_EQ(lin::max_abs_diff(jobs[i].result().q, refs[i].q), 0.0)
        << "job " << i;
    EXPECT_EQ(lin::max_abs_diff(jobs[i].result().r, refs[i].r), 0.0)
        << "job " << i;
  }
  EXPECT_EQ(blocker.wait(), JobStatus::done);

  const ServiceStats st = svc.stats();
  EXPECT_GE(st.batches, 1u);
  EXPECT_EQ(st.batched_jobs, 3u);
}

TEST(ServiceTest, BatchingOffRunsEveryJobAlone) {
  const lin::Matrix a = lin::hashed_matrix(307, 96, 8);
  FactorizeService svc({.ranks = 4, .queue_depth = 16, .batching = false});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  const JobHandle h0 = svc.submit(a);
  const JobHandle h1 = svc.submit(a);
  EXPECT_EQ(h0.wait(), JobStatus::done);
  EXPECT_EQ(h1.wait(), JobStatus::done);
  EXPECT_FALSE(h0.result().batched);
  EXPECT_FALSE(h1.result().batched);
  EXPECT_EQ(svc.stats().batches, 0u);
  // Bitwise invariant either way: the batched lane is the same stacked
  // driver at batch size one.
  const JobHandle h0b = svc.submit(a);
  EXPECT_EQ(h0b.wait(), JobStatus::done);
  EXPECT_EQ(lin::max_abs_diff(h0.result().q, h0b.result().q), 0.0);
}

TEST(ServiceTest, HigherPriorityClassDrainsFirst) {
  const lin::Matrix a = lin::hashed_matrix(308, 96, 8);
  FactorizeService svc({.ranks = 4, .queue_depth = 16});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  const JobHandle low = svc.submit(a, {.priority = Priority::low});
  const JobHandle high = svc.submit(a, {.priority = Priority::high});
  // Strict class order: high rides the round after the blocker, low the
  // one after -- so when low is done, high must long since be.
  EXPECT_EQ(low.wait(), JobStatus::done);
  EXPECT_EQ(high.status(), JobStatus::done);
}

TEST(ServiceTest, FifoWithinAClass) {
  FactorizeService svc({.ranks = 4, .queue_depth = 16, .batching = false});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  const JobHandle first = svc.submit(lin::hashed_matrix(309, 64, 8));
  const JobHandle second = svc.submit(lin::hashed_matrix(310, 96, 16));
  EXPECT_EQ(second.wait(), JobStatus::done);
  EXPECT_EQ(first.status(), JobStatus::done);  // admission order held
}

TEST(ServiceTest, QueueFullRejectsDeterministically) {
  const lin::Matrix a = lin::hashed_matrix(311, 96, 8);
  FactorizeService svc({.ranks = 4, .queue_depth = 3, .batching = false});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  // The engine is pinned inside the blocker's round: exactly queue_depth
  // admissions fit, and the next submit must come back already rejected.
  std::vector<JobHandle> admitted;
  for (int i = 0; i < 3; ++i) admitted.push_back(svc.submit(a));
  const JobHandle overflow = svc.submit(a);
  EXPECT_EQ(overflow.status(), JobStatus::rejected);
  EXPECT_EQ(overflow.wait(), JobStatus::rejected);
  EXPECT_THROW((void)overflow.result(), Error);
  EXPECT_TRUE(overflow.error() != nullptr);
  for (JobHandle& h : admitted) EXPECT_EQ(h.wait(), JobStatus::done);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.submitted, 4u);  // blocker + the three admitted
  EXPECT_EQ(st.max_queue_depth, 3u);
}

TEST(ServiceTest, FailingJobDoesNotPoisonQueueOrBatchMates) {
  Rng rng(312);
  const lin::Matrix bad = lin::with_cond(rng, 64, 8, 1e11);
  const lin::Matrix good = lin::hashed_matrix(313, 64, 8);
  const Ref ref = standalone(good);

  FactorizeService svc({.ranks = 4, .queue_depth = 16});
  const JobHandle blocker = svc.submit(blocker_panel());
  wait_running(blocker);
  // Same shape and options apart from auto_shift?  No: auto_shift is part
  // of the batch key, so force the failing job INTO the batch by sharing
  // all key fields -- every job here runs with auto_shift off, and only
  // the ill-conditioned panel breaks down.
  const JobOptions opts{.auto_shift = false};
  const JobHandle g0 = svc.submit(good, opts);
  const JobHandle b = svc.submit(bad, opts);
  const JobHandle g1 = svc.submit(good, opts);

  EXPECT_EQ(b.wait(), JobStatus::failed);
  EXPECT_THROW((void)b.result(), NotSpdError);
  for (const JobHandle& h : {g0, g1}) {
    EXPECT_EQ(h.wait(), JobStatus::done);
    EXPECT_EQ(lin::max_abs_diff(h.result().q, ref.q), 0.0);
    EXPECT_EQ(lin::max_abs_diff(h.result().r, ref.r), 0.0);
  }
  // The engine survives: a job submitted after the failure completes.
  const JobHandle after = svc.submit(good);
  EXPECT_EQ(after.wait(), JobStatus::done);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 4u);  // blocker, g0, g1, after
}

TEST(ServiceTest, ArenasStopGrowingAfterWarmup) {
  // Satellite contract: the persistent engine pays packing-arena growth
  // on the first job of a shape and never again -- visible per rank lane
  // through the task-group attribution.
  const lin::Matrix a = lin::hashed_matrix(314, 512, 48);
  FactorizeService svc({.ranks = 4});
  EXPECT_EQ(svc.submit(a).wait(), JobStatus::done);  // warmup

  const auto group_allocations = [&] {
    i64 total = 0;
    for (int r = 0; r < svc.options().ranks; ++r) {
      total += lin::kernel::arena_stats(svc.arena_group(r)).allocations;
    }
    return total;
  };
  const i64 warm = group_allocations();
  EXPECT_GT(warm, 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(svc.submit(a).wait(), JobStatus::done);
  }
  EXPECT_EQ(group_allocations(), warm)
      << "packing arenas grew on a repeat of an already-warm shape";
}

TEST(ServiceTest, ShutdownDrainsEveryAdmittedJob) {
  const lin::Matrix a = lin::hashed_matrix(315, 96, 8);
  FactorizeService svc({.ranks = 4, .queue_depth = 16});
  std::vector<JobHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(svc.submit(a));
  svc.shutdown();
  for (JobHandle& h : handles) EXPECT_EQ(h.wait(), JobStatus::done);
  EXPECT_THROW((void)svc.submit(a), Error);
  svc.shutdown();  // idempotent
}

}  // namespace
}  // namespace cacqr::serve
