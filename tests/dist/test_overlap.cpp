/// \file test_overlap.cpp
/// \brief Communication/computation overlap must be invisible in results
///        and raw cost tallies.
///
/// The dist/ and core/ hot paths reorder local staging work relative to
/// in-flight collectives when rt::overlap_enabled() -- but the collective
/// schedules, the one-owner local stages, and the floating-point operation
/// order per output element are unchanged, so overlap on and off must be
/// BITWISE identical per rank, at worker budgets 1 and 4 (the acceptance
/// pair CI runs), and must charge identical msgs/words/flops.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/support/rng.hpp"

namespace cacqr::dist {
namespace {

/// Restores the process-wide overlap flag on scope exit.
struct OverlapGuard {
  explicit OverlapGuard(bool on) : prev(rt::overlap_enabled()) {
    rt::set_overlap_enabled(on);
  }
  ~OverlapGuard() { rt::set_overlap_enabled(prev); }
  OverlapGuard(const OverlapGuard&) = delete;
  OverlapGuard& operator=(const OverlapGuard&) = delete;
  bool prev;
};

bool blobs_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct StageRun {
  std::vector<std::vector<double>> blocks;  ///< published per rank: dims+data
  std::vector<rt::CostCounters> counters;
};

StageRun run_stage(int p, int threads_per_rank, bool overlap,
                   const std::function<lin::Matrix(rt::Comm&)>& stage) {
  OverlapGuard guard(overlap);
  rt::RunOutput out = rt::Runtime::run_collect(
      p,
      [&](rt::Comm& world) {
        const lin::Matrix block = stage(world);
        const double dims[] = {static_cast<double>(block.rows()),
                               static_cast<double>(block.cols())};
        world.publish(dims);
        world.publish(std::span<const double>(
            block.data(), static_cast<std::size_t>(block.size())));
      },
      rt::Machine::counting(), threads_per_rank);
  return {std::move(out.published), std::move(out.counters)};
}

/// The load-bearing assertion: overlap on vs off yields byte-identical
/// per-rank outputs and identical raw msgs/words/flops tallies, at worker
/// budgets 1 and 4.
void expect_overlap_invisible(
    int p, const std::function<lin::Matrix(rt::Comm&)>& stage) {
  for (const int threads : {1, 4}) {
    const StageRun off = run_stage(p, threads, false, stage);
    const StageRun on = run_stage(p, threads, true, stage);
    for (int r = 0; r < p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      EXPECT_TRUE(blobs_equal(off.blocks[i], on.blocks[i]))
          << "rank " << r << " threads " << threads;
      EXPECT_EQ(off.counters[i].msgs, on.counters[i].msgs) << "rank " << r;
      EXPECT_EQ(off.counters[i].words, on.counters[i].words) << "rank " << r;
      EXPECT_EQ(off.counters[i].flops, on.counters[i].flops) << "rank " << r;
    }
  }
}

TEST(OverlapIdentity, Mm3dStagedBroadcasts) {
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix a = lin::hashed_matrix(401, 256, 256);
    const lin::Matrix b = lin::hashed_matrix(402, 256, 256);
    auto da = DistMatrix::from_global_on_cube(a, g);
    auto db = DistMatrix::from_global_on_cube(b, g);
    return mm3d(da, db, g).local();
  });
}

TEST(OverlapIdentity, Transpose3dExchange) {
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix a = lin::hashed_matrix(403, 256, 256);
    auto da = DistMatrix::from_global_on_cube(a, g);
    return transpose3d(da, g).local();
  });
}

TEST(OverlapIdentity, BlockBacksolveComposite) {
  // Exercises repeated overlapped mm3d calls (and the sub_block copies)
  // inside one primitive.
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix b = lin::hashed_matrix(404, 128, 64);
    // Any operand data exercises the overlapped mm3d/add_scaled stages;
    // block_backsolve at nblocks == 2 only multiplies by the given blocks.
    const lin::Matrix r = lin::hashed_matrix(405, 64, 64);
    auto db = DistMatrix::from_global_on_cube(b, g);
    auto dr = DistMatrix::from_global_on_cube(r, g);
    return block_backsolve(db, dr, dr, 2, g).local();
  });
}

TEST(OverlapIdentity, BlockBacksolvePipelinedAcrossIterations) {
  // nblocks >= 3 engages the cross-iteration mm3d pipeline: iteration
  // j+1's first broadcasts start while iteration j's final multiply and
  // add_scaled are still in flight, and inner product (j, i+1) starts
  // under (j, i)'s accumulate.  Schedule changes only; the bits and the
  // raw tallies must not move.
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix b = lin::hashed_matrix(409, 128, 128);
    const lin::Matrix r = lin::hashed_matrix(410, 128, 128);
    auto db = DistMatrix::from_global_on_cube(b, g);
    auto dr = DistMatrix::from_global_on_cube(r, g);
    return block_backsolve(db, dr, dr, 4, g).local();
  });
}

TEST(OverlapIdentity, Cqr1dEndToEnd) {
  expect_overlap_invisible(4, [](rt::Comm& world) {
    Rng rng(406);
    const lin::Matrix a = lin::with_cond(rng, 512, 96, 10.0);
    auto da = DistMatrix::from_global(a, world.size(), 1, world.rank(), 0);
    auto qr = core::cqr_1d(da, world);
    // Fold Q and R into one block so both factors are asserted.
    lin::Matrix out(qr.q.local().rows() + qr.r.rows(), qr.r.cols());
    lin::copy(qr.q.local(), out.sub(0, 0, qr.q.local().rows(), qr.r.cols()));
    lin::copy(qr.r, out.sub(qr.q.local().rows(), 0, qr.r.rows(), qr.r.cols()));
    return out;
  });
}

TEST(OverlapIdentity, CaCqr2EndToEnd) {
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::TunableGrid g(world, 2, 2);
    Rng rng(407);
    const lin::Matrix a = lin::with_cond(rng, 256, 64, 5.0);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto qr = core::ca_cqr2(da, g);
    lin::Matrix out(qr.q.local().rows() + qr.r.local().rows(),
                    qr.q.local().cols());
    lin::copy(qr.q.local(),
              out.sub(0, 0, qr.q.local().rows(), qr.q.local().cols()));
    lin::copy(qr.r.local(), out.sub(qr.q.local().rows(), 0,
                                    qr.r.local().rows(), qr.r.local().cols()));
    return out;
  });
}

TEST(OverlapIdentity, CaGramStartedAllreduce) {
  expect_overlap_invisible(8, [](rt::Comm& world) {
    grid::TunableGrid g(world, 2, 2);
    const lin::Matrix a = lin::hashed_matrix(408, 256, 64);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    return core::ca_gram(da, g).local();
  });
}

}  // namespace
}  // namespace cacqr::dist
