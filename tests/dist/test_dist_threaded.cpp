/// \file test_dist_threaded.cpp
/// \brief Bitwise determinism of the threaded dist/ local stages.
///
/// Mirrors tests/lin/test_parallel.cpp one layer up: every local stage of
/// the distributed primitives (from_global pack, gather unpack, the
/// transpose3d permute, mm3d staging copies, add_scaled, the sub_block
/// copies block_backsolve is built from) is split over the per-rank worker
/// team, and must produce byte-identical local blocks at any per-rank
/// thread budget.  The collectives' schedules are fixed, so whole
/// factorizations inherit the guarantee -- asserted end-to-end for cqr_1d
/// and ca_cqr2 at budgets 1 vs 4 (the same pair CI's CACQR_THREADS matrix
/// runs).

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/dist/dist_matrix.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/kernel.hpp"

namespace cacqr::dist {
namespace {

bool blobs_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Runs `stage` on p ranks with the given per-rank worker budget and
/// returns each rank's output block as a published blob (dims + data),
/// so the comparison works on every transport backend.
std::vector<std::vector<double>> run_stage(
    int p, int threads_per_rank,
    const std::function<lin::Matrix(rt::Comm&)>& stage) {
  rt::RunOutput out = rt::Runtime::run_collect(
      p,
      [&](rt::Comm& world) {
        const lin::Matrix block = stage(world);
        const double dims[] = {static_cast<double>(block.rows()),
                               static_cast<double>(block.cols())};
        world.publish(dims);
        world.publish(std::span<const double>(
            block.data(), static_cast<std::size_t>(block.size())));
      },
      rt::Machine::counting(), threads_per_rank);
  return std::move(out.published);
}

/// The load-bearing assertion: budgets 1 and 4 yield byte-identical
/// per-rank outputs.  Shapes in the tests below are sized so the local
/// blocks exceed the parallel_for_cols grain (8192 elements) and the
/// column split actually engages at budget 4.
void expect_stage_bitwise(int p,
                          const std::function<lin::Matrix(rt::Comm&)>& stage) {
  const auto r1 = run_stage(p, 1, stage);
  const auto r4 = run_stage(p, 4, stage);
  for (int r = 0; r < p; ++r) {
    EXPECT_TRUE(blobs_equal(r1[static_cast<std::size_t>(r)],
                            r4[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
}

TEST(DistThreaded, FromGlobalPack) {
  expect_stage_bitwise(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(301, 1024, 128);
    auto da = DistMatrix::from_global(a, 2, 2, world.rank() / 2,
                                      world.rank() % 2);
    return da.local();
  });
}

TEST(DistThreaded, GatherUnpack) {
  expect_stage_bitwise(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(302, 1024, 128);
    // Slice convention: comm rank == x + col_procs * y.
    auto da = DistMatrix::from_global(a, 2, 2, world.rank() / 2,
                                      world.rank() % 2);
    return gather(da, world);
  });
}

TEST(DistThreaded, Transpose3dPermute) {
  expect_stage_bitwise(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix a = lin::hashed_matrix(303, 256, 256);
    auto da = DistMatrix::from_global_on_cube(a, g);
    return transpose3d(da, g).local();
  });
}

TEST(DistThreaded, Mm3dStagingCopies) {
  expect_stage_bitwise(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix a = lin::hashed_matrix(304, 256, 256);
    const lin::Matrix b = lin::hashed_matrix(305, 256, 256);
    auto da = DistMatrix::from_global_on_cube(a, g);
    auto db = DistMatrix::from_global_on_cube(b, g);
    return mm3d(da, db, g).local();
  });
}

TEST(DistThreaded, AddScaled) {
  expect_stage_bitwise(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(306, 1024, 128);
    const lin::Matrix b = lin::hashed_matrix(307, 1024, 128);
    auto da = DistMatrix::from_global(a, 2, 2, world.rank() / 2,
                                      world.rank() % 2);
    auto db = DistMatrix::from_global(b, 2, 2, world.rank() / 2,
                                      world.rank() % 2);
    add_scaled(da, -0.75, db);
    return da.local();
  });
}

TEST(DistThreaded, SubBlockRoundTrip) {
  expect_stage_bitwise(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(308, 1024, 128);
    auto da = DistMatrix::from_global(a, 2, 2, world.rank() / 2,
                                      world.rank() % 2);
    auto quad = da.sub_block(512, 0, 512, 64);
    da.set_sub_block(0, 64, quad);
    return da.local();
  });
}

TEST(DistThreaded, BlockBacksolve) {
  // Determinism only needs fixed inputs, not a numerically meaningful
  // solve: the sweep exercises the sub_block / mm3d / add_scaled chain.
  expect_stage_bitwise(8, [](rt::Comm& world) {
    grid::CubeGrid g(world, 2);
    const lin::Matrix bm = lin::hashed_matrix(309, 512, 256);
    const lin::Matrix rm = lin::hashed_matrix(310, 256, 256);
    const lin::Matrix rinv = lin::hashed_matrix(311, 256, 256);
    auto db = DistMatrix::from_global_on_cube(bm, g);
    auto dr = DistMatrix::from_global_on_cube(rm, g);
    auto dri = DistMatrix::from_global_on_cube(rinv, g);
    return block_backsolve(db, dr, dri, 4, g).local();
  });
}

TEST(DistThreaded, Cqr1dEndToEnd) {
  expect_stage_bitwise(4, [](rt::Comm& world) {
    const lin::Matrix a = lin::hashed_matrix(312, 2048, 96);
    auto da = DistMatrix::from_global(a, world.size(), 1, world.rank(), 0);
    auto res = core::cqr_1d(da, world);
    // Fold Q and R into one block so a single comparison covers both.
    lin::Matrix out(res.q.local().rows() + res.r.rows(), res.q.local().cols());
    lin::copy(res.q.local(),
              out.sub(0, 0, res.q.local().rows(), res.q.local().cols()));
    lin::copy(res.r.sub(0, 0, res.r.rows(), res.q.local().cols()),
              out.sub(res.q.local().rows(), 0, res.r.rows(),
                      res.q.local().cols()));
    return out;
  });
}

TEST(DistThreaded, CaCqr2EndToEnd) {
  expect_stage_bitwise(8, [](rt::Comm& world) {
    grid::TunableGrid g(world, 2, 2);
    const lin::Matrix a = lin::hashed_matrix(313, 512, 64);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = core::ca_cqr2(da, g);
    lin::Matrix out(res.q.local().rows() + res.r.local().rows(),
                    res.q.local().cols());
    lin::copy(res.q.local(),
              out.sub(0, 0, res.q.local().rows(), res.q.local().cols()));
    lin::copy(res.r.local(), out.sub(res.q.local().rows(), 0,
                                     res.r.local().rows(),
                                     res.r.local().cols()));
    return out;
  });
}

TEST(DistThreaded, Mm3dNoArenaGrowthAfterWarmup) {
  // The only dist stage that feeds the packed-kernel arenas is the local
  // gemm inside mm3d.  Steady-state calls of one shape must not allocate
  // (same contract as PackArena.NoAllocationsAfterFirstSameShapeCall, here
  // across all rank threads and their worker teams at budget 4).
  rt::Runtime::run(
      8,
      [&](rt::Comm& world) {
        grid::CubeGrid g(world, 2);
        const lin::Matrix a = lin::hashed_matrix(314, 256, 256);
        const lin::Matrix b = lin::hashed_matrix(315, 256, 256);
        auto da = DistMatrix::from_global_on_cube(a, g);
        auto db = DistMatrix::from_global_on_cube(b, g);
        // Two warmup rounds: pools spawn and every participating thread's
        // arena finishes growing on the first same-shape call.
        for (int i = 0; i < 2; ++i) (void)mm3d(da, db, g);
        world.barrier();
        static i64 before = 0;
        if (world.rank() == 0) before = lin::kernel::arena_stats().allocations;
        world.barrier();
        for (int i = 0; i < 3; ++i) (void)mm3d(da, db, g);
        world.barrier();
        if (world.rank() == 0) {
          EXPECT_EQ(before, lin::kernel::arena_stats().allocations);
        }
      },
      rt::Machine::counting(), 4);
}

}  // namespace
}  // namespace cacqr::dist
