/// \file test_end_to_end.cpp
/// \brief End-to-end scenarios: the high-level driver across awkward
///        shapes and conditionings, a least-squares pipeline, repeated
///        factorizations sharing a grid, and failure injection.

#include <gtest/gtest.h>

#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/factorize.hpp"
#include "cacqr/lin/blas.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr {
namespace {

using dist::DistMatrix;

TEST(EndToEndTest, ShapeSweepThroughDriver) {
  // A grid of awkward shapes x rank counts, all through factorize().
  struct Case {
    i64 m, n;
    int ranks;
  };
  for (const auto& tc :
       {Case{33, 5, 4}, Case{100, 1, 8}, Case{65, 64, 4}, Case{129, 17, 16},
        Case{57, 57, 8}, Case{500, 3, 2}}) {
    lin::Matrix a = lin::hashed_matrix(
        static_cast<u64>(tc.m * 1000 + tc.n * 10 + tc.ranks), tc.m, tc.n);
    rt::Runtime::run(tc.ranks, [&](rt::Comm& world) {
      auto res = core::factorize(a, world);
      if (world.rank() != 0) return;
      EXPECT_LT(lin::orthogonality_error(res.q), 1e-10)
          << tc.m << "x" << tc.n << " on " << tc.ranks;
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-10)
          << tc.m << "x" << tc.n << " on " << tc.ranks;
      EXPECT_TRUE(lin::is_upper_triangular(res.r));
    });
  }
}

TEST(EndToEndTest, LeastSquaresPipeline) {
  // Factor, solve, and check the normal equations -- the quickstart and
  // least_squares examples as an automated test.
  Rng rng(31415);
  const i64 m = 96, n = 10;
  lin::Matrix a = lin::with_cond(rng, m, n, 30.0);
  lin::Matrix x_true = lin::gaussian(rng, n, 1);
  lin::Matrix b(m, 1);
  lin::gemv(lin::Trans::N, 1.0, a, x_true, 0.0, b);

  rt::Runtime::run(8, [&](rt::Comm& world) {
    auto fact = core::factorize(a, world);
    if (world.rank() != 0) return;
    lin::Matrix qtb(n, 1);
    lin::gemv(lin::Trans::T, 1.0, fact.q, b, 0.0, qtb);
    lin::trsm(lin::Side::Left, lin::Uplo::Upper, lin::Trans::N,
              lin::Diag::NonUnit, 1.0, fact.r, qtb);
    EXPECT_LT(lin::max_abs_diff(qtb, x_true), 1e-9);
  });
}

TEST(EndToEndTest, RepeatedFactorizationsShareGrid) {
  // A long-lived grid servicing several factorizations (the library-use
  // pattern): no cross-talk between successive runs.
  const int c = 2, d = 2;
  rt::Runtime::run(c * c * d, [&](rt::Comm& world) {
    grid::TunableGrid g(world, c, d);
    for (u64 round = 0; round < 4; ++round) {
      lin::Matrix a = lin::hashed_matrix(round + 1, 16 + 16 * (round % 2), 8);
      auto da = DistMatrix::from_global_on_tunable(a, g);
      auto res = core::ca_cqr2(da, g);
      lin::Matrix q = gather(res.q, g.slice());
      lin::Matrix r = gather(res.r, g.subcube().slice());
      EXPECT_LT(lin::orthogonality_error(q), 1e-11) << "round " << round;
      EXPECT_LT(lin::residual_error(a, q, r), 1e-11) << "round " << round;
    }
  });
}

TEST(EndToEndTest, FailureInjectionRankDeficient) {
  // An exactly rank-deficient matrix: the Gram matrix is singular; the
  // driver must fail cleanly through the shifted path or report the
  // breakdown, never hang or return garbage silently.
  lin::Matrix a(24, 6);
  Rng rng(7);
  for (i64 i = 0; i < 24; ++i) {
    const double v = rng.normal();
    for (i64 j = 0; j < 6; ++j) a(i, j) = v * static_cast<double>(j + 1);
  }  // rank 1
  rt::Runtime::run(4, [&](rt::Comm& world) {
    try {
      auto res = core::factorize(a, world);
      // The shifted fallback may succeed numerically; if it does, the
      // factorization must still reconstruct A.
      EXPECT_LT(lin::residual_error(a, res.q, res.r), 1e-8);
      EXPECT_TRUE(res.used_shift);
    } catch (const NotSpdError&) {
      SUCCEED();  // clean, typed failure is acceptable for exact deficiency
    }
  });
}

TEST(EndToEndTest, ZeroMatrixFailsCleanly) {
  lin::Matrix a(16, 4);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    EXPECT_THROW((void)core::factorize(a, world, {.auto_shift = false}),
                 NotSpdError);
  });
}

TEST(EndToEndTest, DriverMatchesDirectApi) {
  // factorize() (padding path) and ca_cqr2 (exact path) agree when no
  // padding is needed.
  lin::Matrix a = lin::hashed_matrix(606, 32, 8);
  rt::Runtime::run(8, [&](rt::Comm& world) {
    auto via_driver = core::factorize(a, world, {.c = 2, .d = 2});
    grid::TunableGrid g(world, 2, 2);
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto direct = core::ca_cqr2(da, g);
    lin::Matrix q = gather(direct.q, g.slice());
    EXPECT_LT(lin::max_abs_diff(via_driver.q, q), 1e-13);
  });
}

}  // namespace
}  // namespace cacqr
