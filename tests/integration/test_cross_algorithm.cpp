/// \file test_cross_algorithm.cpp
/// \brief Cross-algorithm consistency: every QR implementation in the
///        repository -- sequential Householder, sequential CQR2, 1D-CQR2,
///        CA-CQR2 on several grids, ScaLAPACK-style PGEQRF, TSQR -- must
///        produce the SAME (sign-normalized) factors of the same matrix.
///        This pins all six code paths against each other end to end.

#include <gtest/gtest.h>

#include "cacqr/baseline/pgeqrf_2d.hpp"
#include "cacqr/baseline/tsqr.hpp"
#include "cacqr/core/ca_cqr.hpp"
#include "cacqr/core/cqr.hpp"
#include "cacqr/core/cqr_1d.hpp"
#include "cacqr/lin/generate.hpp"
#include "cacqr/lin/qr.hpp"
#include "cacqr/lin/util.hpp"

namespace cacqr {
namespace {

using dist::DistMatrix;

// One well-conditioned shared input; every path factors the same bits.
constexpr i64 kM = 64;
constexpr i64 kN = 16;
constexpr u64 kSeed = 20240610;

lin::Matrix input() { return lin::hashed_matrix(kSeed, kM, kN); }

/// Tolerance scaled for cross-implementation comparison: all algorithms
/// are eps-accurate here, but they sum in different orders.
constexpr double kTol = 1e-10;

TEST(CrossAlgorithmTest, SequentialCqr2MatchesHouseholder) {
  lin::Matrix a = input();
  auto hh = lin::householder_qr(a);
  auto cq = core::cqr2(a);
  EXPECT_LT(lin::max_abs_diff(hh.q, cq.q), kTol);
  EXPECT_LT(lin::max_abs_diff(hh.r, cq.r), kTol * (1.0 + lin::max_abs(hh.r)));
}

TEST(CrossAlgorithmTest, Cqr1dMatchesHouseholder) {
  lin::Matrix a = input();
  auto hh = lin::householder_qr(a);
  rt::Runtime::run(8, [&](rt::Comm& world) {
    auto da = DistMatrix::from_global(a, 8, 1, world.rank(), 0);
    auto res = core::cqr2_1d(da, world);
    lin::Matrix q = gather(res.q, world);
    EXPECT_LT(lin::max_abs_diff(hh.q, q), kTol);
    EXPECT_LT(lin::max_abs_diff(hh.r, res.r),
              kTol * (1.0 + lin::max_abs(hh.r)));
  });
}

TEST(CrossAlgorithmTest, CaCqr2MatchesHouseholderOnEveryGrid) {
  lin::Matrix a = input();
  auto hh = lin::householder_qr(a);
  struct Shape {
    int c, d;
  };
  for (const auto& s : {Shape{1, 4}, Shape{2, 2}, Shape{2, 4}, Shape{4, 4}}) {
    rt::Runtime::run(s.c * s.c * s.d, [&](rt::Comm& world) {
      grid::TunableGrid g(world, s.c, s.d);
      auto da = DistMatrix::from_global_on_tunable(a, g);
      auto res = core::ca_cqr2(da, g);
      lin::Matrix q = gather(res.q, g.slice());
      lin::Matrix r = gather(res.r, g.subcube().slice());
      EXPECT_LT(lin::max_abs_diff(hh.q, q), kTol)
          << "grid " << s.c << "x" << s.d;
      EXPECT_LT(lin::max_abs_diff(hh.r, r),
                kTol * (1.0 + lin::max_abs(hh.r)))
          << "grid " << s.c << "x" << s.d;
    });
  }
}

TEST(CrossAlgorithmTest, PgeqrfMatchesHouseholder) {
  lin::Matrix a = input();
  auto hh = lin::householder_qr(a);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    baseline::ProcGrid2d g(world, 2, 2);
    auto da = baseline::BlockCyclicMatrix::from_global(a, 4, g);
    auto res = baseline::pgeqrf_2d(da, g);
    EXPECT_LT(lin::max_abs_diff(hh.q, res.q.gather(g)), kTol);
    EXPECT_LT(lin::max_abs_diff(hh.r, res.r.gather(g)),
              kTol * (1.0 + lin::max_abs(hh.r)));
  });
}

TEST(CrossAlgorithmTest, TsqrMatchesHouseholder) {
  lin::Matrix a = input();
  auto hh = lin::householder_qr(a);
  rt::Runtime::run(4, [&](rt::Comm& world) {
    auto da = DistMatrix::from_global(a, 4, 1, world.rank(), 0);
    auto res = baseline::tsqr(da, world);
    EXPECT_LT(lin::max_abs_diff(hh.q, gather(res.q, world)), kTol);
    EXPECT_LT(lin::max_abs_diff(hh.r, res.r),
              kTol * (1.0 + lin::max_abs(hh.r)));
  });
}

TEST(CrossAlgorithmTest, AllVariantsAgreeOnHarderConditioning) {
  // kappa ~ 1e5: CholeskyQR2's repair kicks in; all explicit-Q paths
  // still agree with Householder on the unique factorization.
  Rng rng(4242);
  lin::Matrix a = lin::with_cond(rng, 48, 12, 1e5);
  auto hh = lin::householder_qr(a);
  auto cq = core::cqr2(a);
  // CholeskyQR2 loses ~kappa*eps digits in R relative to Householder.
  EXPECT_LT(lin::max_abs_diff(hh.r, cq.r), 1e-8 * (1.0 + lin::max_abs(hh.r)));
  rt::Runtime::run(8, [&](rt::Comm& world) {
    grid::TunableGrid g(world, 2, 2);
    // Pad-free shape: 48 % 2 == 0, 12 % 2 == 0.
    auto da = DistMatrix::from_global_on_tunable(a, g);
    auto res = core::ca_cqr2(da, g);
    lin::Matrix q = gather(res.q, g.slice());
    EXPECT_LT(lin::orthogonality_error(q), 1e-12);
    EXPECT_LT(lin::max_abs_diff(q, cq.q), 1e-9);
  });
}

}  // namespace
}  // namespace cacqr
